package engine

import (
	"fmt"
	"runtime"

	"sensoragg/internal/agg"
	"sensoragg/internal/baseline"
	"sensoragg/internal/byz"
	"sensoragg/internal/core"
	"sensoragg/internal/distinct"
	"sensoragg/internal/faults"
	"sensoragg/internal/gk"
	"sensoragg/internal/gossip"
	"sensoragg/internal/loglog"
	"sensoragg/internal/netsim"
	"sensoragg/internal/obs"
	"sensoragg/internal/qdigest"
	"sensoragg/internal/query"
	"sensoragg/internal/sampling"
	"sensoragg/internal/singlehop"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/wire"
)

// Query kinds the engine executes. They mirror cmd/aggsim's -query values.
const (
	KindMedian         = "median"
	KindOrderStat      = "os"
	KindQuantile       = "quantile"
	KindApxMedian      = "apxmedian"
	KindApxMedian2     = "apxmedian2"
	KindMin            = "min"
	KindMax            = "max"
	KindCount          = "count"
	KindSum            = "sum"
	KindAvg            = "avg"
	KindDistinct       = "distinct"
	KindApxDistinct    = "apxdistinct"
	KindQDigest        = "qdigest"
	KindGK             = "gk"
	KindSampling       = "sampling"
	KindGossip         = "gossip"
	KindGossipDistinct = "gossipdistinct"
	KindCollectAll     = "collectall"
	KindSingleHop      = "singlehop"
	KindBuildTree      = "buildtree"
	KindStatement      = "statement"
	// KindQuantiles answers every quantile in Query.Phis with one shared
	// k-ary probe schedule (core.SelectRanksBatched).
	KindQuantiles = "quantiles"
	// KindFused answers COUNT+SUM+MIN+MAX (Query.Aggs) with one fused
	// vector sweep instead of one sweep per aggregate.
	KindFused = "fused"
)

// Query is one aggregate query specification.
type Query struct {
	// Kind selects the protocol (Kind* constants).
	Kind string `json:"kind"`
	// K is the rank for order-statistic queries (0 → ⌈N/2⌉).
	K uint64 `json:"k,omitempty"`
	// Phi is the quantile in (0,1] for KindQuantile.
	Phi float64 `json:"phi,omitempty"`
	// Eps is the failure probability for randomized queries (0 → 0.25).
	Eps float64 `json:"eps,omitempty"`
	// Beta is the precision for apxmedian2 (0 → 1/64).
	Beta float64 `json:"beta,omitempty"`
	// SketchP is the LogLog register exponent (0 → core.DefaultSketchP).
	SketchP int `json:"sketch_p,omitempty"`
	// Statement is a sensorql statement, used when Kind == "statement".
	Statement string `json:"statement,omitempty"`
	// ProbeWidth is the number of COUNT probes batched per CountVec sweep
	// in the selection queries (median/os/quantile/quantiles): 0 means the
	// engine default (core.DefaultProbeWidth), 1 runs the classic
	// one-probe-per-sweep binary search — the unbatched reference path.
	ProbeWidth int `json:"probe_width,omitempty"`
	// Phis are the quantile fractions for KindQuantiles, each in (0,1].
	Phis []float64 `json:"phis,omitempty"`
	// Aggs selects the aggregates KindFused reports, a subset of
	// count|sum|min|max|avg; empty means count,sum,min,max.
	Aggs []string `json:"aggs,omitempty"`
	// SeedWindows are delta-narrowing hints for the selection kinds, one
	// per requested rank in order (a single window for median/os/quantile,
	// one per phi for quantiles; a length mismatch is ignored). A window
	// biases the probe schedule toward where the answer was last epoch —
	// it never changes the answer; see core.SeedWindow.
	SeedWindows []core.SeedWindow `json:"seed_windows,omitempty"`
	// Robust runs the query on the Byzantine-robust tier (internal/byz):
	// under an adversarial fault plan the engine first localizes and
	// quarantines lying subtrees via challenge audits, then aggregates
	// per root-child sector with trimmed partials, and the Result carries
	// suspected/quarantined counts and an integrity bound. With no
	// adversary the robust answer is value-identical to the plain one.
	// Supported for the exact aggregate kinds
	// (median/os/quantile/quantiles/count/sum/min/max/avg/fused).
	Robust bool `json:"robust,omitempty"`
}

// WithDefaults returns the query with unset tunables resolved to the
// engine defaults — the normalization every run applies, exported for CLIs
// and tests that inspect the resolved configuration.
func (q Query) WithDefaults() Query {
	if q.Eps == 0 {
		q.Eps = 0.25
	}
	if q.Beta == 0 {
		q.Beta = 1.0 / 64
	}
	if q.SketchP == 0 {
		q.SketchP = core.DefaultSketchP
	}
	if q.ProbeWidth == 0 {
		q.ProbeWidth = core.DefaultProbeWidth
	}
	if q.Kind == KindFused && len(q.Aggs) == 0 {
		q.Aggs = []string{"count", "sum", "min", "max"}
	}
	return q
}

// String labels the query for reports.
func (q Query) String() string {
	if q.Kind == KindStatement {
		return fmt.Sprintf("statement(%s)", q.Statement)
	}
	return q.Kind
}

// answer is what one protocol run produced, before metering is attached.
type answer struct {
	value      float64
	detail     string
	truth      float64
	truthKnown bool
	// values/truths carry the full result vector of multi-valued kinds
	// (quantiles, fused); value/truth then hold the first entry.
	values []float64
	truths []float64
	// heal is the self-healing repair run that preceded the query, when
	// the run's fault plan had structural faults.
	heal *spantree.HealResult
	// sweeps is the number of probe sweeps in the plane that answered the
	// query (selection and fused-aggregate kinds); surfaces as
	// Result.SharedSweeps.
	sweeps int
	// seededSweeps/seedHit report the delta-narrowing outcome of a seeded
	// selection; surface as Result.SeededSweeps/SeedHit.
	seededSweeps int
	seedHit      bool
	// retries/degraded/survivorFrac report a phased fault plan's mid-flight
	// retry outcome; surface as Result.Retries/Degraded/SurvivorFrac.
	retries      int
	degraded     bool
	survivorFrac float64
	// robust carries the byz tier's outcome for a Query.Robust run: the
	// localization report (nil when no adversary was planned) and the
	// aggregation plane's integrity accounting.
	robust *robustInfo
}

// robustInfo is the byz-tier outcome attached to a robust answer.
type robustInfo struct {
	rep       *byz.Report
	integrity byz.Integrity
}

// execute runs q against the per-run network nw. The network must be
// private to this run: execute mutates node items (zoom/filter stages) and
// charges the meter freely.
//
// A spec with an active fault plan reshapes the run: the plan is attached
// to the network (forked from the run seed unless the session already
// attached one), structural faults trigger a spantree.Heal repair whose
// traffic is charged to the meter before the query runs, and the
// simulator-side ground truth shrinks to the surviving, reconnected nodes
// — the population the healed tree can actually aggregate.
func execute(nw *netsim.Network, spec Spec, q Query) (answer, error) {
	q = q.WithDefaults()

	if spec.Faults.Active() && nw.Faults == nil {
		if err := spec.Faults.Validate(); err != nil {
			return answer{}, err
		}
		nw.Faults = faults.New(spec.Faults, nw.N(), nw.Root(), nw.Seed())
	}
	if p := nw.Faults; p != nil && p.Active() {
		if err := faultSupport(q.Kind, p.Spec()); err != nil {
			return answer{}, err
		}
		if p.Spec().Phased() && q.Robust {
			return answer{}, fmt.Errorf("engine: robust mode does not support phased fault plans (the byz tier has no mid-flight retry story)")
		}
	}

	// A fusable tree query under a phased fault plan runs as a resilient
	// batch of one: the detect → re-heal → resume loop in retry.go, with
	// the same degradation contract as a fused batch. The goroutine
	// reference engine is rejected below (it has no sweep clock), and
	// unfusable parameters fall through to report their standard errors.
	if p := nw.Faults; p != nil && p.PhaseArmed() && !q.Robust && fusableKind(q.Kind) {
		switch spec.TreeEngine {
		case "", "fast", "fast-serial", "fast-parallel":
			if ans, ok, err := executeResilientSolo(nw, spec, q); ok {
				return ans, err
			}
		}
	}

	var ops spantree.Ops
	var heal *spantree.HealResult
	switch spec.TreeEngine {
	case "", "fast", "fast-serial", "fast-parallel":
		var fe *spantree.FastEngine
		if usesTree(q.Kind) {
			var hr *spantree.HealResult
			var err error
			fe, hr, err = spantree.NewFastHealed(nw)
			if err != nil {
				return answer{}, err
			}
			heal = hr
		} else {
			// Gossip/radio kinds never touch the tree: no repair runs,
			// so their cost is purely the protocol's own traffic.
			fe = spantree.NewFast(nw)
		}
		// The -serial and -parallel variants pin the fast engine's
		// schedule (and -serial additionally disables payload pooling):
		// reference modes for the identity tests, bit-identical to the
		// default auto schedule.
		switch spec.TreeEngine {
		case "fast-serial":
			if p := nw.Faults; p != nil && p.Adversarial() {
				// The unpooled reference path routes combiners through the
				// generic gather, which has no lie-injection hook — an
				// adversarial plan would silently not lie there.
				return answer{}, fmt.Errorf("engine: adversarial fault plans (byz) require the pooled fast engine")
			}
			fe.SetWorkers(1)
			fe.SetPooled(false)
		case "fast-parallel":
			fe.SetWorkers(2 * runtime.GOMAXPROCS(0))
		}
		ops = fe
	case "goroutine":
		if p := nw.Faults; p != nil && p.Active() {
			return answer{}, fmt.Errorf("engine: fault plans require the fast tree engine")
		}
		ops = spantree.NewGoroutine(nw)
	default:
		return answer{}, fmt.Errorf("engine: unknown tree engine %q", spec.TreeEngine)
	}
	values := nw.AllItems()
	if heal != nil {
		values = survivingItems(nw, heal.View)
	}
	if q.Robust {
		return executeRobust(nw, spec, q, ops, heal, values)
	}
	net := agg.NewNet(ops, agg.WithSketchP(q.SketchP))
	ans, err := executeKind(nw, spec, q, ops, net, values)
	if err != nil {
		return answer{}, err
	}
	ans.heal = heal
	return ans, nil
}

// executeRobust runs a Query.Robust job on the byz tier: localize and
// quarantine lying subtrees (adversarial plans only — the audit protocol
// costs traffic, so honest runs skip it), re-derive the execution view and
// ground truth, cross-check the trimmed plane against the
// duplicate-insensitive sketch, and dispatch the kind over a RobustNet.
func executeRobust(nw *netsim.Network, spec Spec, q Query, ops spantree.Ops, heal *spantree.HealResult, values []uint64) (answer, error) {
	if !robustKind(q.Kind) {
		return answer{}, fmt.Errorf("engine: %s does not support robust mode (exact aggregate kinds only)", q.Kind)
	}
	fe, ok := ops.(*spantree.FastEngine)
	if !ok {
		return answer{}, fmt.Errorf("engine: robust mode requires the fast tree engine")
	}
	view := fe.View()
	plan := nw.Faults
	adversarial := plan != nil && plan.Adversarial()
	var rep *byz.Report
	if adversarial {
		var err error
		rep, view, err = byz.Localize(nw, view)
		if err != nil {
			return answer{}, err
		}
		if rep.Healed != nil {
			heal = rep.Healed
			values = survivingItems(nw, view)
		}
	}
	rnet := byz.NewRobustNet(nw, view, byz.WithSketchP(q.SketchP))
	if adversarial {
		rnet.CrossCheck()
	}
	ans, err := executeKind(nw, spec, q, ops, rnet, values)
	if err != nil {
		return answer{}, err
	}
	ans.heal = heal
	ans.robust = &robustInfo{rep: rep, integrity: rnet.Integrity()}
	if sk := obs.Active(); sk != nil {
		obsRobust(sk, ans.robust)
	}
	return ans, nil
}

// robustKind reports whether a query kind can run on the trimmed
// sector-split plane: the exact aggregates whose primitives RobustNet
// reproduces. The sketch, digest, gossip, and radio families have no
// trimmed variant (the duplicate-insensitive sketches are the byz tier's
// own cross-check layer), and statements compile to plans that may zoom
// or filter, which the capacity model does not track.
func robustKind(kind string) bool {
	switch kind {
	case KindMedian, KindOrderStat, KindQuantile, KindQuantiles,
		KindCount, KindSum, KindMin, KindMax, KindAvg, KindFused:
		return true
	}
	return false
}

// usesTree reports whether a query kind executes over the spanning tree
// (and therefore needs the self-healing repair under structural faults).
// The gossip and radio kinds run directly on the graph, and buildtree
// constructs the tree itself.
func usesTree(kind string) bool {
	switch kind {
	case KindGossip, KindGossipDistinct, KindSingleHop, KindBuildTree:
		return false
	}
	return true
}

// faultSupport rejects fault-plan/kind combinations the engine cannot
// execute honestly, with an explanation instead of a downstream protocol
// error. Tree kinds support everything (structural faults heal first);
// the graph-level gossip/radio kinds take message faults at the netsim
// boundary but have no repair story for crashes or dead links yet; the
// distributed tree construction assumes the full node set.
func faultSupport(kind string, fs faults.Spec) error {
	if kind == KindBuildTree {
		return fmt.Errorf("engine: buildtree does not support fault plans (the construction protocol assumes the full node set)")
	}
	if !usesTree(kind) && fs.Structural() {
		return fmt.Errorf("engine: %s does not support structural faults (crash/linkfail) — only tree queries self-heal; message faults (drop/dup) are fine", kind)
	}
	if fs.Phased() {
		switch {
		case kind == KindGossip || kind == KindGossipDistinct:
			// Gossip takes the mid-round fault natively: the epidemic
			// protocol keeps running over the survivors past the fire and
			// degrades gracefully without any retry machinery.
		case fusableKind(kind):
			// The exact selection/aggregate tree kinds detect the
			// incomplete sweep, re-heal, and resume (see retry.go).
		default:
			return fmt.Errorf("engine: %s does not support phased (mid-sweep) fault plans — only the exact selection/aggregate tree kinds retry, and the gossip kinds degrade natively", kind)
		}
	}
	return nil
}

// survivingItems collects the items of the nodes the healed view covers —
// the ground-truth population for a post-repair query.
func survivingItems(nw *netsim.Network, view *spantree.TreeView) []uint64 {
	out := make([]uint64, 0, len(view.Order))
	for _, nd := range nw.Nodes {
		if !view.Includes(nd.ID) {
			continue
		}
		for _, it := range nd.Items {
			out = append(out, it.Orig)
		}
	}
	return out
}

// aggregator is the primitive-protocol surface executeKind dispatches
// over: *agg.Net provides it directly, and *byz.RobustNet provides the
// trimmed sector-split variant for robust queries.
type aggregator interface {
	core.Net
	Sum(core.Domain, wire.Pred) uint64
	Min(core.Domain) (uint64, bool)
	Max(core.Domain) (uint64, bool)
	Average(core.Domain, wire.Pred) (float64, bool)
	MultiAggregate(core.Domain, wire.Pred) (count, sum, lo, hi uint64, ok bool)
}

var (
	_ aggregator = (*agg.Net)(nil)
	_ aggregator = (*byz.RobustNet)(nil)
)

// executeKind dispatches the query kind over the prepared execution state.
func executeKind(nw *netsim.Network, spec Spec, q Query, ops spantree.Ops, net aggregator, values []uint64) (answer, error) {
	// Sorting is only needed by the order-statistic truths; don't pay
	// O(N log N) on every count/sum/sketch run.
	var sortedCache []uint64
	sorted := func() []uint64 {
		if sortedCache == nil {
			sortedCache = core.SortedCopy(values)
		}
		return sortedCache
	}
	exactUint := func(v uint64, detail string, truth uint64) answer {
		return answer{value: float64(v), detail: detail, truth: float64(truth), truthKnown: true}
	}

	// seedAns transfers a seeded batch's delta-narrowing outcome onto the
	// assembled answer.
	seedAns := func(ans answer, res core.BatchResult) answer {
		ans.sweeps = res.Sweeps
		ans.seededSweeps = res.SeededSweeps
		ans.seedHit = res.SeedHit
		return ans
	}

	switch q.Kind {
	case KindMedian:
		if q.ProbeWidth > 1 {
			res, err := core.SelectRanksSeeded(net, []core.BatchRank{{Median: true}}, q.ProbeWidth, q.SeedWindows)
			if err != nil {
				return answer{}, err
			}
			return seedAns(exactUint(res.Values[0],
				fmt.Sprintf("%d k-ary sweeps (width %d)", res.Sweeps, q.ProbeWidth),
				core.TrueMedian(sorted())), res), nil
		}
		res, err := core.Median(net)
		if err != nil {
			return answer{}, err
		}
		ans := exactUint(res.Value, fmt.Sprintf("%d binary-search iterations", res.Iterations), core.TrueMedian(sorted()))
		ans.sweeps = res.CountCalls
		return ans, nil

	case KindOrderStat, KindQuantile:
		k := q.K
		if q.Kind == KindQuantile {
			if q.Phi <= 0 || q.Phi > 1 {
				return answer{}, fmt.Errorf("engine: quantile phi %g out of (0,1]", q.Phi)
			}
			k = core.QuantileRank(q.Phi, uint64(len(values)))
		}
		if k == 0 {
			k = uint64((len(values) + 1) / 2)
		}
		if q.ProbeWidth > 1 {
			res, err := core.SelectRanksSeeded(net, []core.BatchRank{{K: k}}, q.ProbeWidth, q.SeedWindows)
			if err != nil {
				return answer{}, err
			}
			return seedAns(exactUint(res.Values[0],
				fmt.Sprintf("rank %d, %d k-ary sweeps (width %d)", k, res.Sweeps, q.ProbeWidth),
				core.TrueOrderStatistic(sorted(), int(k))), res), nil
		}
		res, err := core.OrderStatistic(net, k)
		if err != nil {
			return answer{}, err
		}
		ans := exactUint(res.Value, fmt.Sprintf("rank %d", k), core.TrueOrderStatistic(sorted(), int(k)))
		ans.sweeps = res.CountCalls
		return ans, nil

	case KindQuantiles:
		if len(q.Phis) == 0 {
			return answer{}, fmt.Errorf("engine: quantiles requires at least one phi")
		}
		// Ranks are φ-resolved against the protocol-counted N inside the
		// search (folded into the first sweep), so the kind degrades under
		// message faults exactly like median does: a corrupted count skews
		// the answer instead of tripping a rank-vs-population mismatch.
		ranks := make([]core.BatchRank, len(q.Phis))
		for i, phi := range q.Phis {
			if phi <= 0 || phi > 1 {
				return answer{}, fmt.Errorf("engine: quantile phi %g out of (0,1]", phi)
			}
			ranks[i] = core.BatchRank{Phi: phi}
		}
		res, err := core.SelectRanksSeeded(net, ranks, q.ProbeWidth, q.SeedWindows)
		if err != nil {
			return answer{}, err
		}
		ans := answer{
			detail: fmt.Sprintf("%d quantiles in %d shared k-ary sweeps (width %d)",
				len(q.Phis), res.Sweeps, q.ProbeWidth),
			truthKnown:   true,
			sweeps:       res.Sweeps,
			seededSweeps: res.SeededSweeps,
			seedHit:      res.SeedHit,
		}
		for i, v := range res.Values {
			k := core.QuantileRank(q.Phis[i], uint64(len(values)))
			ans.values = append(ans.values, float64(v))
			ans.truths = append(ans.truths, float64(core.TrueOrderStatistic(sorted(), int(k))))
		}
		ans.value, ans.truth = ans.values[0], ans.truths[0]
		return ans, nil

	case KindFused:
		count, sum, lo, hi, ok := net.MultiAggregate(core.Linear, wire.True())
		if !ok {
			return answer{}, fmt.Errorf("engine: empty network")
		}
		var tSum uint64
		tLo, tHi := values[0], values[0]
		for _, v := range values {
			tSum += v
			if v < tLo {
				tLo = v
			}
			if v > tHi {
				tHi = v
			}
		}
		got := map[string]float64{
			"count": float64(count), "sum": float64(sum),
			"min": float64(lo), "max": float64(hi),
			"avg": float64(sum) / float64(count),
		}
		want := map[string]float64{
			"count": float64(len(values)), "sum": float64(tSum),
			"min": float64(tLo), "max": float64(tHi),
			"avg": float64(tSum) / float64(len(values)),
		}
		ans := answer{detail: "fused vector sweep (count+sum+min+max)", truthKnown: true, sweeps: 1}
		for _, a := range q.Aggs {
			v, known := got[a]
			if !known {
				return answer{}, fmt.Errorf("engine: unknown fused aggregate %q (count|sum|min|max|avg)", a)
			}
			ans.values = append(ans.values, v)
			ans.truths = append(ans.truths, want[a])
		}
		ans.value, ans.truth = ans.values[0], ans.truths[0]
		return ans, nil

	case KindApxMedian:
		res, err := core.ApxMedian(net, core.ApxParams{Epsilon: q.Eps})
		if err != nil {
			return answer{}, err
		}
		return answer{
			value:      float64(res.Value),
			detail:     fmt.Sprintf("%d α-counting instances, halted early: %v", res.Instances, res.HaltedEarly),
			truth:      float64(core.TrueMedian(sorted())),
			truthKnown: true,
		}, nil

	case KindApxMedian2:
		res, err := core.ApxMedian2(net, core.Apx2Params{Beta: q.Beta, Epsilon: q.Eps})
		if err != nil {
			return answer{}, err
		}
		return answer{
			value:      float64(res.Value),
			detail:     fmt.Sprintf("%d zoom stages, %d instances", res.Stages, res.Instances),
			truth:      float64(core.TrueMedian(sorted())),
			truthKnown: true,
		}, nil

	case KindMin:
		v, ok := net.Min(core.Linear)
		if !ok {
			return answer{}, fmt.Errorf("engine: empty network")
		}
		return exactUint(v, "exact", sorted()[0]), nil

	case KindMax:
		v, ok := net.Max(core.Linear)
		if !ok {
			return answer{}, fmt.Errorf("engine: empty network")
		}
		return exactUint(v, "exact", sorted()[len(values)-1]), nil

	case KindCount:
		return exactUint(net.Count(core.Linear, wire.True()), "exact", uint64(len(values))), nil

	case KindSum:
		var s uint64
		for _, v := range values {
			s += v
		}
		return exactUint(net.Sum(core.Linear, wire.True()), "exact", s), nil

	case KindAvg:
		v, ok := net.Average(core.Linear, wire.True())
		if !ok {
			return answer{}, fmt.Errorf("engine: empty network")
		}
		var s uint64
		for _, x := range values {
			s += x
		}
		return answer{value: v, detail: "exact (SUM/COUNT)", truth: float64(s) / float64(len(values)), truthKnown: true}, nil

	case KindDistinct:
		res, err := distinct.Exact(ops)
		if err != nil {
			return answer{}, err
		}
		return exactUint(uint64(res.Distinct), "exact set union", uint64(core.TrueDistinct(values))), nil

	case KindApxDistinct:
		res, err := distinct.Approximate(ops, q.SketchP, loglog.EstHLL, nw.Seed())
		if err != nil {
			return answer{}, err
		}
		return answer{
			value:      res.Estimate,
			detail:     fmt.Sprintf("sketch m=%d, σ=%.3f", 1<<q.SketchP, res.Sigma),
			truth:      float64(core.TrueDistinct(values)),
			truthKnown: true,
		}, nil

	case KindQDigest:
		res, err := qdigest.MedianProtocol(ops, 16)
		if err != nil {
			return answer{}, err
		}
		return exactUint(res.Value, fmt.Sprintf("rank error bound %d", res.RankErrorBound), core.TrueMedian(sorted())), nil

	case KindGK:
		res, err := gk.MedianProtocol(ops, 24)
		if err != nil {
			return answer{}, err
		}
		return exactUint(res.Value, fmt.Sprintf("rank gap ≤ %d", res.MaxGap), core.TrueMedian(sorted())), nil

	case KindSampling:
		res, err := sampling.Median(ops, 128, nw.Seed())
		if err != nil {
			return answer{}, err
		}
		return exactUint(res.Value, fmt.Sprintf("from %d samples", res.SampleSize), core.TrueMedian(sorted())), nil

	case KindGossip:
		res, err := gossip.Median(nw, gossip.Params{})
		if err != nil {
			return answer{}, err
		}
		return exactUint(res.Value, fmt.Sprintf("%d push-sum phases", res.Phases), core.TrueMedian(sorted())), nil

	case KindGossipDistinct:
		res := gossip.Distinct(nw, q.SketchP, loglog.EstHLL, nw.Seed(), gossip.Params{})
		return answer{
			value:      res.Estimate,
			detail:     fmt.Sprintf("%d gossip rounds", res.Rounds),
			truth:      float64(core.TrueDistinct(values)),
			truthKnown: true,
		}, nil

	case KindCollectAll:
		res, err := baseline.CollectAllMedian(ops)
		if err != nil {
			return answer{}, err
		}
		return exactUint(res.Value, fmt.Sprintf("%d items shipped", res.Items), core.TrueMedian(sorted())), nil

	case KindSingleHop:
		if spec.Topology != "complete" {
			return answer{}, fmt.Errorf("engine: singlehop requires topology=complete, got %q", spec.Topology)
		}
		res, err := singlehop.Median(nw)
		if err != nil {
			return answer{}, err
		}
		return exactUint(res.Value,
			fmt.Sprintf("max transmit %d bits/node, %d radio rounds", res.MaxTransmitBits, res.Rounds),
			core.TrueMedian(sorted())), nil

	case KindBuildTree:
		res, err := spantree.BuildBFS(nw)
		if err != nil {
			return answer{}, err
		}
		return answer{
			value:      float64(res.Tree.Height()),
			detail:     fmt.Sprintf("distributed BFS in %d rounds", res.Rounds),
			truth:      float64(topology.BFSTree(nw.Graph, 0).Height()),
			truthKnown: true,
		}, nil

	case KindStatement:
		an, ok := net.(*agg.Net)
		if !ok {
			return answer{}, fmt.Errorf("engine: statements do not support robust mode")
		}
		res, err := query.Exec(an, q.Statement)
		if err != nil {
			return answer{}, err
		}
		return answer{value: res.Value, detail: res.Detail, values: res.Values}, nil

	default:
		return answer{}, fmt.Errorf("engine: unknown query kind %q", q.Kind)
	}
}

// Kinds returns every query kind the engine executes, for CLI help.
func Kinds() []string {
	return []string{
		KindMedian, KindOrderStat, KindQuantile, KindQuantiles, KindFused,
		KindApxMedian, KindApxMedian2,
		KindMin, KindMax, KindCount, KindSum, KindAvg,
		KindDistinct, KindApxDistinct, KindQDigest, KindGK, KindSampling,
		KindGossip, KindGossipDistinct, KindCollectAll, KindSingleHop,
		KindBuildTree, KindStatement,
	}
}
