package engine

import (
	"bytes"
	"context"
	"encoding/json"
	"strings"
	"testing"
	"time"

	"sensoragg/internal/netsim"
	"sensoragg/internal/workload"
)

func gridSpec(n int, seed uint64) Spec {
	return Spec{Topology: "grid", N: n, Workload: string(workload.Zipf), Seed: seed}
}

// serialReference runs the job the way a serial caller would: construct the
// network directly with netsim.New (no session, no fork) and execute.
func serialReference(t *testing.T, job Job) Result {
	t.Helper()
	spec := job.Spec.Normalize()
	g, err := BuildGraph(spec.Topology, spec.N, spec.Seed)
	if err != nil {
		t.Fatal(err)
	}
	values := workload.Generate(workload.Kind(spec.Workload), g.N(), spec.MaxX, spec.Seed)
	nw := netsim.New(g, values, spec.MaxX,
		netsim.WithSeed(spec.Seed), netsim.WithMaxChildren(spec.MaxChildren))
	res, err := executeSerial(nw, spec, job.Query)
	if err != nil {
		t.Fatalf("serial %s on %s: %v", job.Query, spec, err)
	}
	return res
}

// TestParallelMatchesSerial is the engine's concurrent-correctness
// contract: N parallel queries on distinct seeds each match their
// serial-execution answer and bits/node cost exactly. Determinism must
// survive concurrency.
func TestParallelMatchesSerial(t *testing.T) {
	kinds := []Query{
		{Kind: KindMedian},
		{Kind: KindQuantile, Phi: 0.9},
		{Kind: KindCount},
		{Kind: KindSum},
		{Kind: KindDistinct},
		{Kind: KindApxDistinct},
		{Kind: KindApxMedian},
		{Kind: KindGK},
		{Kind: KindQDigest},
	}
	var jobs []Job
	for _, q := range kinds {
		for seed := uint64(1); seed <= 4; seed++ {
			jobs = append(jobs, Job{Spec: gridSpec(256, seed), Query: q})
		}
	}

	e := New(Options{Workers: 8})
	results := e.Run(context.Background(), jobs)
	if len(results) != len(jobs) {
		t.Fatalf("got %d results for %d jobs", len(results), len(jobs))
	}
	for i, got := range results {
		if got.Failed() {
			t.Fatalf("job %d (%s seed %d) failed: %s", i, jobs[i].Query, jobs[i].Spec.Seed, got.Error)
		}
		want := serialReference(t, jobs[i])
		if got.Value != want.Value {
			t.Errorf("job %d (%s seed %d): value %g != serial %g",
				i, jobs[i].Query, jobs[i].Spec.Seed, got.Value, want.Value)
		}
		if got.BitsPerNode != want.BitsPerNode || got.TotalBits != want.TotalBits || got.Messages != want.Messages {
			t.Errorf("job %d (%s seed %d): meter (%d,%d,%d) != serial (%d,%d,%d)",
				i, jobs[i].Query, jobs[i].Spec.Seed,
				got.BitsPerNode, got.TotalBits, got.Messages,
				want.BitsPerNode, want.TotalBits, want.Messages)
		}
		if got.Truth != want.Truth || got.Exact != want.Exact {
			t.Errorf("job %d: truth/exact (%g,%v) != serial (%g,%v)",
				i, got.Truth, got.Exact, want.Truth, want.Exact)
		}
	}
}

// TestConcurrentSameSpec hammers one cached template from many goroutines:
// every run of the same (spec, seed, query) must produce the identical
// result, and the template must stay pristine. Run with -race.
func TestConcurrentSameSpec(t *testing.T) {
	spec := gridSpec(144, 7)
	job := Job{Spec: spec, Query: Query{Kind: KindMedian}}
	e := New(Options{Workers: 8})

	jobs := make([]Job, 16)
	for i := range jobs {
		jobs[i] = job
	}
	results := e.Run(context.Background(), jobs)
	for i, r := range results {
		if r.Failed() {
			t.Fatalf("run %d failed: %s", i, r.Error)
		}
		if r.Value != results[0].Value || r.BitsPerNode != results[0].BitsPerNode {
			t.Errorf("run %d diverged: value %g bits %d vs run 0 value %g bits %d",
				i, r.Value, r.BitsPerNode, results[0].Value, results[0].BitsPerNode)
		}
	}

	tmpl, err := e.Session().Template(spec)
	if err != nil {
		t.Fatal(err)
	}
	if got := tmpl.Meter.TotalBits(); got != 0 {
		t.Errorf("template meter charged %d bits; runs leaked into the template", got)
	}
	for _, nd := range tmpl.Nodes {
		for _, it := range nd.Items {
			if !it.Active || it.Cur != it.Orig {
				t.Fatalf("template node %d items mutated by a run", nd.ID)
			}
		}
	}
}

// TestSessionCache verifies template reuse and tree sharing across
// differently-seeded deployments of the same shape.
func TestSessionCache(t *testing.T) {
	s := NewSession()
	a, err := s.Template(gridSpec(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	b, err := s.Template(gridSpec(100, 1))
	if err != nil {
		t.Fatal(err)
	}
	if a != b {
		t.Error("same spec built two templates")
	}
	hits, misses := s.Stats()
	if hits != 1 || misses != 1 {
		t.Errorf("stats = %d hits / %d misses, want 1/1", hits, misses)
	}

	// A different seed is a different workload (new template) but the same
	// grid: the immutable tree must be shared, not rebuilt.
	c, err := s.Template(gridSpec(100, 2))
	if err != nil {
		t.Fatal(err)
	}
	if c == a {
		t.Error("different seeds must not share a template")
	}
	if c.Tree != a.Tree {
		t.Error("same-shape deployments should share the cached spanning tree")
	}

	// Forks are independent networks over the shared tree.
	f1, err := s.Instantiate(gridSpec(100, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	f2, err := s.Instantiate(gridSpec(100, 1), 1)
	if err != nil {
		t.Fatal(err)
	}
	if f1 == f2 || f1.Meter == f2.Meter {
		t.Error("instantiate must fork fresh networks and meters")
	}
	if f1.Tree != f2.Tree {
		t.Error("forks should share the immutable tree")
	}
}

// TestDeadline: a query that cannot finish within the per-query deadline is
// reported failed, and other jobs in the batch still complete.
func TestDeadline(t *testing.T) {
	e := New(Options{Workers: 2, Timeout: time.Nanosecond})
	r := e.RunOne(context.Background(), Job{Spec: gridSpec(1024, 1), Query: Query{Kind: KindMedian}})
	if !r.Failed() {
		t.Fatal("expected deadline failure")
	}

	// Without a timeout the same job succeeds.
	ok := New(Options{Workers: 2})
	r = ok.RunOne(context.Background(), Job{Spec: gridSpec(1024, 1), Query: Query{Kind: KindMedian}})
	if r.Failed() {
		t.Fatalf("unexpected failure: %s", r.Error)
	}
}

// TestRunCancel: cancelling the batch context fails remaining jobs rather
// than hanging the pool.
func TestRunCancel(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	e := New(Options{Workers: 2})
	jobs := []Job{
		{Spec: gridSpec(64, 1), Query: Query{Kind: KindCount}},
		{Spec: gridSpec(64, 2), Query: Query{Kind: KindCount}},
	}
	for i, r := range e.Run(ctx, jobs) {
		if !r.Failed() {
			t.Errorf("job %d: expected context-cancelled failure", i)
		}
	}
}

// TestBadJobsAreIsolated: an invalid spec or query fails its own result
// without poisoning the batch.
func TestBadJobsAreIsolated(t *testing.T) {
	e := New(Options{Workers: 4})
	jobs := []Job{
		{Spec: gridSpec(64, 1), Query: Query{Kind: KindCount}},
		{Spec: Spec{Topology: "moebius", N: 64}, Query: Query{Kind: KindCount}},
		{Spec: gridSpec(64, 1), Query: Query{Kind: "nope"}},
		{Spec: gridSpec(64, 1), Query: Query{Kind: KindSingleHop}}, // needs complete topology
		{Spec: gridSpec(64, 2), Query: Query{Kind: KindSum}},
	}
	results := e.Run(context.Background(), jobs)
	for _, i := range []int{0, 4} {
		if results[i].Failed() {
			t.Errorf("job %d should succeed, got: %s", i, results[i].Error)
		}
	}
	for _, i := range []int{1, 2, 3} {
		if !results[i].Failed() {
			t.Errorf("job %d should fail", i)
		}
	}
}

// TestFailedTemplateIsNotPoisoned: a spec whose build fails must keep
// failing with the real error on every request — the once-guarded cache
// entry must cache the error, not a nil template that later nil-derefs.
func TestFailedTemplateIsNotPoisoned(t *testing.T) {
	e := New(Options{Workers: 2})
	bad := Spec{Topology: "grid", N: 64, Workload: "bogus", Seed: 1}
	for i := 0; i < 2; i++ {
		r := e.RunOne(context.Background(), Job{Spec: bad, Query: Query{Kind: KindCount}})
		if !r.Failed() {
			t.Fatalf("attempt %d: expected failure", i)
		}
		if !strings.Contains(r.Error, "unknown workload") {
			t.Fatalf("attempt %d: error lost its cause: %s", i, r.Error)
		}
	}
}

// TestStatementKind routes sensorql statements through the engine.
func TestStatementKind(t *testing.T) {
	e := New(Options{Workers: 2})
	r := e.RunOne(context.Background(), Job{
		Spec:  gridSpec(100, 3),
		Query: Query{Kind: KindStatement, Statement: "SELECT count(value)"},
	})
	if r.Failed() {
		t.Fatalf("statement failed: %s", r.Error)
	}
	if r.Value != 100 {
		t.Errorf("count = %g, want 100", r.Value)
	}
}

// TestReportJSON: the collector aggregates bits/node per kind and the
// report survives a JSON round trip.
func TestReportJSON(t *testing.T) {
	e := New(Options{Workers: 4})
	var jobs []Job
	for seed := uint64(1); seed <= 3; seed++ {
		jobs = append(jobs, Job{Spec: gridSpec(100, seed), Query: Query{Kind: KindMedian}})
		jobs = append(jobs, Job{Spec: gridSpec(100, seed), Query: Query{Kind: KindCount}})
	}
	rep := e.RunReport(context.Background(), jobs)
	if rep.Jobs != 6 || rep.Failed != 0 {
		t.Fatalf("report jobs/failed = %d/%d, want 6/0", rep.Jobs, rep.Failed)
	}
	if len(rep.Summary) != 2 {
		t.Fatalf("summary has %d kinds, want 2", len(rep.Summary))
	}
	for _, s := range rep.Summary {
		if s.Runs != 3 || s.MeanBitsPerNode <= 0 {
			t.Errorf("summary %s: runs=%d mean bits/node=%g", s.Kind, s.Runs, s.MeanBitsPerNode)
		}
		if s.Kind == KindMedian && s.ExactRuns != 3 {
			t.Errorf("median exact runs = %d, want 3", s.ExactRuns)
		}
	}
	var buf bytes.Buffer
	if err := rep.WriteJSON(&buf); err != nil {
		t.Fatal(err)
	}
	var back Report
	if err := json.Unmarshal(buf.Bytes(), &back); err != nil {
		t.Fatalf("report is not valid JSON: %v", err)
	}
	if back.Jobs != rep.Jobs || len(back.Results) != len(rep.Results) {
		t.Error("report did not survive JSON round trip")
	}
}
