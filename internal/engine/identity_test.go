package engine

import (
	"context"
	"testing"

	"sensoragg/internal/faults"
)

// identityFields compares everything a run reports that must be
// bit-identical across execution modes.
func identityFields(t *testing.T, label string, got, want Result) {
	t.Helper()
	if got.Failed() || want.Failed() {
		t.Fatalf("%s: failed run (got %q, want %q)", label, got.Error, want.Error)
	}
	if got.Value != want.Value {
		t.Errorf("%s: value %v, want %v", label, got.Value, want.Value)
	}
	if len(got.Values) != len(want.Values) {
		t.Errorf("%s: values %v, want %v", label, got.Values, want.Values)
	} else {
		for i := range got.Values {
			if got.Values[i] != want.Values[i] {
				t.Errorf("%s: values[%d] = %v, want %v", label, i, got.Values[i], want.Values[i])
			}
		}
	}
	if got.Detail != want.Detail {
		t.Errorf("%s: detail %q, want %q", label, got.Detail, want.Detail)
	}
	if got.BitsPerNode != want.BitsPerNode {
		t.Errorf("%s: bits/node %d, want %d", label, got.BitsPerNode, want.BitsPerNode)
	}
	if got.TotalBits != want.TotalBits {
		t.Errorf("%s: total bits %d, want %d", label, got.TotalBits, want.TotalBits)
	}
	if got.Messages != want.Messages {
		t.Errorf("%s: messages %d, want %d", label, got.Messages, want.Messages)
	}
	if got.Crashed != want.Crashed || got.Unreachable != want.Unreachable || got.RepairBits != want.RepairBits {
		t.Errorf("%s: fault impact (%d,%d,%d), want (%d,%d,%d)", label,
			got.Crashed, got.Unreachable, got.RepairBits,
			want.Crashed, want.Unreachable, want.RepairBits)
	}
}

// queryFor builds a runnable query for each kind.
func queryFor(kind string) Query {
	q := Query{Kind: kind}
	switch kind {
	case KindStatement:
		q.Statement = "SELECT count(value)"
	case KindQuantile:
		q.Phi = 0.75
	case KindQuantiles:
		q.Phis = []float64{0.25, 0.5, 0.9}
	}
	return q
}

// TestFastEngineVariantsIdenticalAllKinds is the pooled/parallel identity
// gate at the query-engine level: for every query kind, the default fast
// engine (pooled, auto-parallel), the sequential unpooled reference, and
// the forced-parallel schedule must report byte-identical values, details,
// and meters.
func TestFastEngineVariantsIdenticalAllKinds(t *testing.T) {
	eng := New(Options{Workers: 1})
	for _, kind := range Kinds() {
		t.Run(kind, func(t *testing.T) {
			spec := Spec{Topology: "grid", N: 64, Workload: "uniform", Seed: 5}
			if kind == KindSingleHop {
				spec.Topology = "complete"
			}
			ref := eng.RunOne(context.Background(), Job{
				Spec:  withEngine(spec, "fast-serial"),
				Query: queryFor(kind),
			})
			if ref.Failed() {
				t.Fatalf("reference run: %s", ref.Error)
			}
			for _, te := range []string{"fast", "fast-parallel"} {
				got := eng.RunOne(context.Background(), Job{
					Spec:  withEngine(spec, te),
					Query: queryFor(kind),
				})
				identityFields(t, te, got, ref)
			}
		})
	}
}

// TestFastEngineVariantsIdenticalUnderFaults repeats the identity gate
// with an active fault plan — crashes force a heal before the query,
// drop/dup exercises the per-edge delivery decisions — for the tree kinds
// that support structural faults.
func TestFastEngineVariantsIdenticalUnderFaults(t *testing.T) {
	eng := New(Options{Workers: 1})
	fs := faults.Spec{Crash: 0.08, Drop: 0.03, Dup: 0.03}
	for _, kind := range []string{KindMedian, KindCount, KindSum, KindMin, KindQDigest, KindSampling, KindCollectAll, KindApxDistinct} {
		t.Run(kind, func(t *testing.T) {
			spec := Spec{Topology: "grid", N: 144, Workload: "uniform", Seed: 9, Faults: fs}
			ref := eng.RunOne(context.Background(), Job{
				Spec:  withEngine(spec, "fast-serial"),
				Query: queryFor(kind),
			})
			if ref.Failed() {
				t.Fatalf("reference run: %s", ref.Error)
			}
			if ref.Crashed == 0 {
				t.Fatalf("fault plan crashed no nodes — test is vacuous")
			}
			for _, te := range []string{"fast", "fast-parallel"} {
				got := eng.RunOne(context.Background(), Job{
					Spec:  withEngine(spec, te),
					Query: queryFor(kind),
				})
				identityFields(t, te, got, ref)
			}
		})
	}
}

// TestPooledInstantiateIdenticalAcrossReuse issues the same job through
// one engine repeatedly so the session's fork pool recycles networks, and
// demands every repetition reproduce the first run exactly — the
// engine-level proof that a pooled reset-in-place equals a fresh fork.
func TestPooledInstantiateIdenticalAcrossReuse(t *testing.T) {
	eng := New(Options{Workers: 1})
	mk := func(kind string, fs faults.Spec) Job {
		return Job{
			Spec:  Spec{Topology: "grid", N: 100, Workload: "zipf", Seed: 3, Faults: fs},
			Query: queryFor(kind),
		}
	}
	for _, tc := range []struct {
		name string
		job  Job
	}{
		{"median", mk(KindMedian, faults.Spec{})},
		{"apxdistinct", mk(KindApxDistinct, faults.Spec{})},
		{"median-faulty", mk(KindMedian, faults.Spec{Crash: 0.05, Drop: 0.02})},
	} {
		t.Run(tc.name, func(t *testing.T) {
			first := eng.RunOne(context.Background(), tc.job)
			if first.Failed() {
				t.Fatalf("first run: %s", first.Error)
			}
			for i := 0; i < 4; i++ {
				again := eng.RunOne(context.Background(), tc.job)
				identityFields(t, "recycled run", again, first)
			}
		})
	}
}

func withEngine(s Spec, te string) Spec {
	s.TreeEngine = te
	return s
}
