package engine

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"time"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/netsim"
	"sensoragg/internal/obs"
	"sensoragg/internal/spantree"
)

// This file is the mid-flight fault-tolerance loop: when a phased fault
// plan (faults.Spec.MidAt) kills nodes or links while a sweep is in
// flight, the tree engine's completeness check surfaces
// spantree.ErrSweepIncomplete instead of a silently partial count. The
// loop here catches it, re-heals the tree around the dead subtrees
// (re-rooting if the root itself died), recomputes the survivor ground
// truth, and resumes every selection search from its checkpointed
// interval — up to Spec.Retry.Budget times, after which the answer is
// assembled degraded from the best-known bounds instead of erroring.
//
// Resume soundness: checkpointed intervals come back as seed *windows* on
// fresh steppers, never as hard bounds. The pre-crash probe counts were
// taken over a population that no longer exists, so every absolute count
// is recomputed against the survivors; the checkpoint only biases the new
// schedule toward where the answer already was, which costs at most the
// sweeps the hint saves and can never change the answer.

// resilientOutcome is what one resilient batch run produced.
type resilientOutcome struct {
	res FusedResult
	// hr is the last heal that shaped the final view (nil when no heal ran
	// — an unfired plan with no structural pre-faults, or a budget-0
	// degrade).
	hr *spantree.HealResult
	// values is the final survivor ground-truth population.
	values []uint64
	// retries counts the re-heal/resume attempts consumed.
	retries int
	// degraded marks a budget-exhausted best-effort answer.
	degraded bool
	// survivorFrac is the covered fraction of the deployment's nodes, set
	// only when the phased fault actually fired.
	survivorFrac float64
}

// resilientFused drives one fusion batch (or a batch of one, the solo
// path) under a phased fault plan. The caller hands in the engine, heal
// result, and survivor values of the pre-query state; every retry rebuilds
// them from the re-healed view. queries must already have defaults
// resolved and be fusable (fusedMemberFor ok).
func resilientFused(ctx context.Context, nw *netsim.Network, spec Spec, fe *spantree.FastEngine, hr *spantree.HealResult, values []uint64, queries []Query, deadline time.Time) (*resilientOutcome, error) {
	plan := nw.Faults
	out := &resilientOutcome{hr: hr}
	var seeds [][]core.SeedWindow
	for attempt := 0; ; attempt++ {
		members := make([]FusedMember, len(queries))
		for i, q := range queries {
			mb, ok := fusedMemberFor(q, values)
			if !ok {
				return nil, fmt.Errorf("engine: %s is not fusable with these parameters", q.Kind)
			}
			if seeds != nil && len(seeds[i]) > 0 {
				mb.Seeds = seeds[i]
			}
			members[i] = mb
		}
		res := FusedResult{Members: make([]FusedMemberResult, len(members))}
		steppers, needSum := buildSteppers(members, &res)
		ise, ferr := driveGuarded(ctx, agg.NewNet(fe), members, steppers, needSum, deadline, &res)
		if ise == nil {
			out.res = res
			out.values = values
			out.retries = attempt
			if plan.PhaseFired() {
				out.survivorFrac = float64(fe.View().N()) / float64(nw.N())
			}
			return out, ferr
		}

		// The sweep died mid-flight: a dead subtree frontier (or the root
		// itself) went missing from the convergecast.
		if sk := obs.Active(); sk != nil {
			sk.SweepsIncomplete.Add(1)
		}
		if attempt >= spec.Retry.Budget {
			out.retries = attempt
			out.degraded = true
			out.survivorFrac = float64(nw.N()-plan.ExcludedCount()) / float64(nw.N())
			degradeMembers(members, steppers, &res)
			out.res = res
			if sk := obs.Active(); sk != nil {
				for i := range res.Members {
					if res.Members[i].Err == nil {
						sk.DegradedAnswers.Add(1)
					}
				}
			}
			return out, nil
		}
		if spec.Retry.Backoff > 0 {
			t := time.NewTimer(spec.Retry.Backoff)
			select {
			case <-t.C:
			case <-ctx.Done():
				t.Stop()
				return nil, ctx.Err()
			}
		}

		// Checkpoint every selection member's last consistent intervals
		// before the steppers are rebuilt — the resumed attempt seeds from
		// them.
		seeds = make([][]core.SeedWindow, len(members))
		for i, st := range steppers {
			if st != nil {
				seeds[i] = st.Checkpoint(nil)
			}
		}

		// Re-heal around the dead subtrees, re-rooting if the root died,
		// and recompute the survivor ground truth the resumed sweeps count
		// over. Repair traffic is charged to the run meter like any other
		// protocol traffic.
		hr2, _, err := spantree.HealRerooted(nw)
		if err != nil {
			return nil, err
		}
		if sk := obs.Active(); sk != nil {
			sk.Retries.Add(1)
		}
		out.hr = hr2
		fe = spantree.NewFastView(nw, hr2.View)
		pinFastEngine(fe, spec.TreeEngine)
		values = survivingItems(nw, hr2.View)
		if len(values) == 0 {
			return nil, core.ErrEmpty
		}
	}
}

// driveGuarded runs one batch attempt, converting the mid-sweep
// incompleteness panic the agg layer throws back into its typed error.
// Any other panic value propagates. It is a plain function invoked only on
// the phased path, so the zero-fault hot path never pays for the
// defer/recover.
func driveGuarded(ctx context.Context, net *agg.Net, members []FusedMember, steppers []*core.SelectStepper, needSum bool, deadline time.Time, res *FusedResult) (ise *spantree.IncompleteSweepError, err error) {
	defer func() {
		if r := recover(); r != nil {
			e, ok := r.(error)
			if !ok || !errors.As(e, &ise) {
				panic(r)
			}
			err = nil
		}
	}()
	err = driveFused(ctx, net, members, steppers, needSum, deadline, res)
	return nil, err
}

// degradeMembers fills every still-unanswered member with best-known
// bounds: a selection member gets the low end of each rank's checkpointed
// interval (or the global minimum when the search never resolved), an
// aggregate member gets whatever shared riders the failed attempt
// completed. No truth claim accompanies these values.
func degradeMembers(members []FusedMember, steppers []*core.SelectStepper, res *FusedResult) {
	for i, mb := range members {
		r := &res.Members[i]
		if r.Err != nil {
			continue
		}
		r.Detached = false
		if st := steppers[i]; st != nil {
			wins := st.Checkpoint(nil)
			r.Values = make([]uint64, len(mb.Ranks))
			for j := range r.Values {
				if j < len(wins) {
					r.Values[j] = wins[j].Lo
				} else {
					r.Values[j] = res.Lo
				}
			}
			continue
		}
		r.AggValues = make([]float64, 0, len(mb.Aggs))
		for _, a := range mb.Aggs {
			switch a {
			case "count":
				r.AggValues = append(r.AggValues, float64(res.N))
			case "sum":
				r.AggValues = append(r.AggValues, float64(res.Sum))
			case "min":
				r.AggValues = append(r.AggValues, float64(res.Lo))
			case "max":
				r.AggValues = append(r.AggValues, float64(res.Hi))
			case "avg":
				if res.N > 0 {
					r.AggValues = append(r.AggValues, float64(res.Sum)/float64(res.N))
				} else {
					r.AggValues = append(r.AggValues, 0)
				}
			}
		}
	}
}

// executeResilientSolo routes a solo fusable query under a phased fault
// plan through the resilient loop as a batch of one. ok is false when the
// query's parameters are unfusable — the caller falls through to the plain
// path, which reports the standard parameter error.
func executeResilientSolo(nw *netsim.Network, spec Spec, q Query) (answer, bool, error) {
	fe, hr, err := spantree.NewFastHealed(nw)
	if err != nil {
		return answer{}, true, err
	}
	pinFastEngine(fe, spec.TreeEngine)
	values := nw.AllItems()
	if hr != nil {
		values = survivingItems(nw, hr.View)
	}
	if _, ok := fusedMemberFor(q, values); !ok {
		return answer{}, false, nil
	}
	rout, err := resilientFused(context.Background(), nw, spec, fe, hr, values, []Query{q}, time.Time{})
	if err != nil {
		return answer{}, true, err
	}
	mr := rout.res.Members[0]
	if mr.Err != nil {
		return answer{}, true, mr.Err
	}
	var ans answer
	if rout.degraded {
		ans = degradedAnswer(q, mr, rout.retries)
	} else {
		var sortedCache []uint64
		sorted := func() []uint64 {
			if sortedCache == nil {
				sortedCache = core.SortedCopy(rout.values)
			}
			return sortedCache
		}
		ans = fusedAnswer(q, mr, rout.res, 1, rout.values, sorted)
		if rout.retries > 0 {
			ans.detail = fmt.Sprintf("resumed after %d mid-sweep re-heal(s); %s", rout.retries, ans.detail)
		}
	}
	ans.heal = rout.hr
	ans.retries = rout.retries
	ans.degraded = rout.degraded
	ans.survivorFrac = rout.survivorFrac
	return ans, true, nil
}

// pinFastEngine applies the TreeEngine reference-variant pinning shared by
// the fused and resilient paths (exec.go's solo path keeps its own switch:
// it additionally rejects adversarial plans on the unpooled variant).
func pinFastEngine(fe *spantree.FastEngine, treeEngine string) {
	switch treeEngine {
	case "fast-serial":
		fe.SetWorkers(1)
		fe.SetPooled(false)
	case "fast-parallel":
		fe.SetWorkers(2 * runtime.GOMAXPROCS(0))
	}
}
