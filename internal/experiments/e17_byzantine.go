package experiments

import (
	"context"
	"fmt"

	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// ByzantineSweep is experiment E17 — answer integrity vs Byzantine rate,
// with the robust tier off and on. Byzantine nodes corrupt their
// convergecast partials, so the plain median drifts arbitrarily far: a
// single liar on the root path can claim a whole subtree sits on either
// side of every probe. The robust tier answers the same query through
// per-sector trimmed aggregation plus a challenge-sum audit that
// localizes and quarantines the liars, so its error column stays at
// zero (against the surviving population's truth) while the overhead
// column prices what the audits and sector framing cost in the paper's
// measure (total bits, relative to the plain run).
func ByzantineSweep(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E17",
		Title:  "Byzantine nodes: median integrity and cost, plain vs robust tier",
		Header: []string{"byz rate", "plain err", "robust err", "quarantined", "bound", "audit bits", "overhead x"},
	}
	n := 1024
	if cfg.Quick {
		n = 256
	}
	eng := engine.New(engine.Options{})
	for _, rate := range []float64{0, 0.02, 0.05, 0.1} {
		spec := engine.Spec{
			Topology: "grid", N: n, Workload: string(workload.Uniform),
			Seed: cfg.Seed, Faults: faults.Spec{Byz: rate},
		}
		res := eng.Submit(context.Background(), []engine.Job{
			{Spec: spec, Query: engine.Query{Kind: engine.KindMedian}},
			{Spec: spec, Query: engine.Query{Kind: engine.KindMedian, Robust: true}},
		})
		plain, robust := res[0], res[1]
		if plain.Failed() || robust.Failed() {
			return nil, fmt.Errorf("byzantine sweep at rate %.2f: plain %q robust %q",
				rate, plain.Error, robust.Error)
		}
		overhead := 0.0
		if plain.TotalBits > 0 {
			overhead = float64(robust.TotalBits) / float64(plain.TotalBits)
		}
		t.AddRow(rate,
			stats.RelErr(plain.Value, plain.Truth),
			stats.RelErr(robust.Value, robust.Truth),
			float64(robust.Quarantined),
			float64(robust.IntegrityBound),
			float64(robust.AuditBits),
			overhead)
	}
	t.AddNote("Each robust answer is exact against the honest survivors once every liar is quarantined (bound 0); a nonzero bound counts the items a still-suspect sector could displace.")
	t.AddNote("The overhead column is the robustness price in the paper's measure: sector framing plus the challenge-sum audits, a constant factor at fixed rate — the audit replies are two gamma-coded challenge sums per subtree, not data.")
	return t, nil
}
