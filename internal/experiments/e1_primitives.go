package experiments

import (
	"sensoragg/internal/core"
	"sensoragg/internal/stats"
	"sensoragg/internal/wire"
	"sensoragg/internal/workload"
)

// Primitives is experiment E1 — Fact 2.1: MAX, MIN, COUNT (and TAG's SUM)
// cost O(log N) bits per node on a bounded-degree spanning tree. The table
// sweeps N and topology and reports max-per-node bits for each primitive;
// the fitted (log N)-exponent should be ≈ 1.
func Primitives(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E1",
		Title:  "Primitive aggregates (Fact 2.1): bits/node vs N",
		Header: []string{"topology", "N", "minmax b/node", "count b/node", "sum b/node", "count result"},
	}
	ns := sizes(cfg, []int{256, 1024, 4096, 16384, 65536}, 1024)
	const maxX = 1 << 16

	for _, kind := range []topoKind{topoLine, topoGrid, topoRGG} {
		var xs, countBits []float64
		for _, n := range ns {
			net := simNet(kind, n, workload.Uniform, maxX, cfg.Seed+uint64(n))
			nw := net.Network()
			realN := nw.N()

			before := nw.Meter.Snapshot()
			net.MinMax(core.Linear)
			mmBits := nw.Meter.Since(before).MaxPerNode

			before = nw.Meter.Snapshot()
			count := net.Count(core.Linear, wire.True())
			cBits := nw.Meter.Since(before).MaxPerNode

			before = nw.Meter.Snapshot()
			net.Sum(core.Linear, wire.True())
			sBits := nw.Meter.Since(before).MaxPerNode

			if count != uint64(realN) {
				t.AddNote("FAIL: COUNT on %s N=%d returned %d", kind, realN, count)
			}
			t.AddRow(string(kind), realN, mmBits, cBits, sBits, count)
			xs = append(xs, float64(realN))
			countBits = append(countBits, float64(cBits))
		}
		if len(xs) >= 3 {
			t.AddNote("%s: COUNT (log N)-exponent ≈ %.2f (Fact 2.1 predicts ≈ 1)",
				kind, stats.FitPolyLog(xs, countBits))
		}
	}
	t.AddNote("Expected shape: per-node bits grow logarithmically in N on every topology.")
	return t, nil
}
