package experiments

import (
	"context"
	"fmt"

	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// SelfHealing is experiment E14 — the fault axis the paper's static model
// (§2.1) abstracts away: crash a fraction of a 24×24 grid, let the
// spantree self-healing protocol reattach the orphaned subtrees, and check
// that MEDIAN and COUNT still answer exactly over the surviving
// population. The repair traffic is charged to the meter like any other
// protocol traffic, so its cost appears in the paper's own bits-per-node
// measure.
func SelfHealing(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E14",
		Title:  "Self-healing tree: crash faults on a 24×24 grid, exact queries over survivors",
		Header: []string{"crash rate", "crashed", "unreachable", "repair bits", "median", "count", "both exact"},
	}
	const n = 576 // 24×24 — the acceptance scenario
	eng := engine.New(engine.Options{})
	for _, rate := range []float64{0.01, 0.02, 0.05} {
		spec := engine.Spec{
			Topology: "grid", N: n, Workload: string(workload.Uniform),
			Seed: cfg.Seed, Faults: faults.Spec{Crash: rate},
		}
		med := eng.Submit(context.Background(), []engine.Job{{Spec: spec, Query: engine.Query{Kind: engine.KindMedian}}})[0]
		if med.Failed() {
			return nil, fmt.Errorf("selfhealing: median at rate %.2f: %s", rate, med.Error)
		}
		cnt := eng.Submit(context.Background(), []engine.Job{{Spec: spec, Query: engine.Query{Kind: engine.KindCount}}})[0]
		if cnt.Failed() {
			return nil, fmt.Errorf("selfhealing: count at rate %.2f: %s", rate, cnt.Error)
		}
		exact := med.Exact && cnt.Exact && med.Unreachable == 0
		mark := "✓"
		if !exact {
			mark = "✗"
			t.AddNote("FAIL: rate %.2f — median exact=%v count exact=%v unreachable=%d", rate, med.Exact, cnt.Exact, med.Unreachable)
		}
		t.AddRow(rate, med.Crashed, med.Unreachable, med.RepairBits,
			engine.FormatValue(med.Value), engine.FormatValue(cnt.Value), mark)
	}
	t.AddNote("Each run's fault plan crashes nodes deterministically from the run seed; the heartbeat/HELP/AVAIL/JOIN repair reattaches every surviving fragment, and MEDIAN/COUNT answer exactly over the reconnected population.")
	t.AddNote("Repair bits grow with the crash rate (more fragments to graft), but stay a small constant factor over the per-query cost — fault tolerance priced in the paper's own measure.")
	return t, nil
}
