package experiments

import (
	"math"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/hashing"
	"sensoragg/internal/loglog"
	"sensoragg/internal/stats"
	"sensoragg/internal/wire"
	"sensoragg/internal/workload"
)

// ApxCountAccuracy is experiment E2 — Fact 2.2: Durand–Flajolet LogLog is
// an α-counting protocol with bias α ≈ 0 and σ·√m → ≈1.30 (HLL: ≈1.04),
// at O(m·log log N) bits per node. The table sweeps the register count m,
// measuring empirical bias and σ·√m for both estimators, plus the measured
// per-node cost of one APX COUNT instance on a grid.
func ApxCountAccuracy(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E2",
		Title:  "α-counting accuracy (Fact 2.2): bias and σ·√m vs m",
		Header: []string{"m", "LL bias", "LL σ·√m", "HLL bias", "HLL σ·√m", "b/node (1 inst)"},
	}
	const n = 1 << 16
	numTrials := trials(cfg, 200, 40)
	ps := []int{4, 6, 8, 10}
	if cfg.Quick {
		ps = []int{4, 6}
	}

	for _, p := range ps {
		m := 1 << p
		llErr := make([]float64, 0, numTrials)
		hllErr := make([]float64, 0, numTrials)
		for trial := 0; trial < numTrials; trial++ {
			h := hashing.New(cfg.Seed + uint64(trial)*131 + uint64(p))
			sk := loglog.New(p)
			for i := 0; i < n; i++ {
				sk.AddKey(h, uint64(i))
			}
			llErr = append(llErr, (sk.Estimate()-n)/n)
			hllErr = append(hllErr, (loglog.HLL{Sketch: sk}.Estimate()-n)/n)
		}

		// Per-node cost of one network APX COUNT instance at this m.
		net := simNet(topoGrid, 1024, workload.Uniform, 1<<16, cfg.Seed, agg.WithSketchP(p))
		nw := net.Network()
		before := nw.Meter.Snapshot()
		net.ApxCount(core.Linear, wire.True())
		bits := nw.Meter.Since(before).MaxPerNode

		t.AddRow(m,
			stats.Mean(llErr), stats.Stddev(llErr)*math.Sqrt(float64(m)),
			stats.Mean(hllErr), stats.Stddev(hllErr)*math.Sqrt(float64(m)),
			bits)
	}
	t.AddNote("Fact 2.2 predicts LogLog σ·√m → ≈1.30 and |bias| → 0; HyperLogLog σ·√m ≈ 1.04.")
	t.AddNote("Per-node bits grow linearly in m: the O(m·log log N) term (registers are %d bits each).", loglog.RegisterBits)
	return t, nil
}
