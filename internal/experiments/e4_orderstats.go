package experiments

import (
	"fmt"

	"sensoragg/internal/core"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// OrderStatistics is experiment E4 — Section 3.4: the Fig. 1 search answers
// any k-order statistic with the same complexity. The sweep probes extreme
// and interior ranks on a skewed workload; every answer must be exact, and
// the cost must not depend on k.
func OrderStatistics(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E4",
		Title:  "k-order statistics (§3.4): exactness and cost across ranks",
		Header: []string{"k/N", "k", "value", "b/node", "iterations", "exact"},
	}
	n := 4096
	if cfg.Quick {
		n = 512
	}
	maxX := uint64(4 * n)
	net := simNet(topoRGG, n, workload.Zipf, maxX, cfg.Seed)
	nw := net.Network()
	sorted := core.SortedCopy(nw.AllItems())
	realN := nw.N()

	var costs []float64
	for _, frac := range []float64{0.001, 0.01, 0.25, 0.5, 0.75, 0.99, 1.0} {
		k := int(frac * float64(realN))
		if k < 1 {
			k = 1
		}
		before := nw.Meter.Snapshot()
		res, err := core.OrderStatistic(net, uint64(k))
		if err != nil {
			return nil, fmt.Errorf("order statistic k=%d: %w", k, err)
		}
		d := nw.Meter.Since(before)
		exact := res.Value == core.TrueOrderStatistic(sorted, k)
		if !exact {
			t.AddNote("FAIL: k=%d returned %d, want %d", k, res.Value, core.TrueOrderStatistic(sorted, k))
		}
		t.AddRow(fmt.Sprintf("%.3f", frac), k, res.Value, d.MaxPerNode, res.Iterations, exact)
		costs = append(costs, float64(d.MaxPerNode))
	}
	minCost := costs[0]
	for _, c := range costs {
		if c < minCost {
			minCost = c
		}
	}
	spread := (stats.Max(costs) - minCost) / stats.Mean(costs)
	t.AddNote("Iteration count is rank-independent (the search always runs ⌈log(M−m)⌉ rounds); per-node bits vary %.1f%% of mean because gamma-coded partial counts are shorter near extreme ranks.", 100*spread)
	return t, nil
}
