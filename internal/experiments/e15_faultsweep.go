package experiments

import (
	"context"
	"fmt"

	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// FaultSweep is experiment E15 — accuracy vs message-loss rate through the
// engine's fault plans: a dropped convergecast partial silently discards
// the child's entire subtree contribution, so COUNT and SUM undershoot in
// proportion to how much of the tree went missing, and the median search
// drifts as its counting subroutine lies to it. The engine's JSON
// collector reports the same numbers as mean_rel_err per kind — the
// accuracy column of an accuracy-vs-fault-rate sweep.
func FaultSweep(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E15",
		Title:  "Message loss: aggregate error vs drop rate (subtree loss at every hop)",
		Header: []string{"drop rate", "count err", "sum err", "median err"},
	}
	n := 1024
	if cfg.Quick {
		n = 256
	}
	eng := engine.New(engine.Options{})
	kinds := []string{engine.KindCount, engine.KindSum, engine.KindMedian}
	for _, drop := range []float64{0, 0.01, 0.05, 0.1} {
		errs := make([]float64, len(kinds))
		for i, kind := range kinds {
			spec := engine.Spec{
				Topology: "grid", N: n, Workload: string(workload.Uniform),
				Seed: cfg.Seed, Faults: faults.Spec{Drop: drop},
			}
			r := eng.Submit(context.Background(), []engine.Job{{Spec: spec, Query: engine.Query{Kind: kind}}})[0]
			if r.Failed() {
				return nil, fmt.Errorf("faultsweep: %s at drop %.2f: %s", kind, drop, r.Error)
			}
			errs[i] = stats.RelErr(r.Value, r.Truth)
		}
		t.AddRow(drop, errs[0], errs[1], errs[2])
	}
	t.AddNote("Loss compounds along the path like duplication does (E10): a partial dropped h hops from the root erases a whole subtree, so error grows much faster than the per-message rate.")
	t.AddNote("Unlike duplication, no merge discipline saves you from loss — recovering it needs acknowledgments or multi-path routing, which is why ODI synopses are paired with broadcast-based dissemination in practice.")
	return t, nil
}
