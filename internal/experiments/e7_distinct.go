package experiments

import (
	"fmt"
	"math"

	"sensoragg/internal/core"
	"sensoragg/internal/distinct"
	"sensoragg/internal/loglog"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// CountDistinct is experiment E7 — Section 5: exact COUNT DISTINCT costs
// Θ(distinct · log X) per node near the root (linear in the worst case),
// while the sketch protocol costs O(m · log log n) with relative error
// ≈ 1.04/√m (the section's "(1 ± 3.15/k) with k² log log n bits" remark,
// modulo estimator constants).
func CountDistinct(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E7",
		Title:  "COUNT DISTINCT (§5): exact vs approximate cost and error",
		Header: []string{"N", "distinct", "exact b/node", "sketch m", "sketch b/node", "rel err", "σ bound"},
	}
	ns := sizes(cfg, []int{512, 2048, 8192, 32768}, 1024)
	var xs, exactBits, sketchBits []float64

	for _, n := range ns {
		maxX := uint64(8 * n)
		g := buildGraph(topoGrid, n, cfg.Seed)
		values := workload.Generate(workload.Uniform, g.N(), maxX, cfg.Seed+uint64(n))
		truth := float64(core.TrueDistinct(values))

		nwExact := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed))
		exRes, err := distinct.Exact(spantree.NewFast(nwExact))
		if err != nil {
			return nil, fmt.Errorf("exact distinct N=%d: %w", n, err)
		}
		if float64(exRes.Distinct) != truth {
			t.AddNote("FAIL: exact distinct N=%d returned %d, want %.0f", n, exRes.Distinct, truth)
		}

		const p = 6 // m = 64 registers
		nwApx := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed))
		apRes, err := distinct.Approximate(spantree.NewFast(nwApx), p, loglog.EstHLL, cfg.Seed+uint64(n))
		if err != nil {
			return nil, fmt.Errorf("approximate distinct N=%d: %w", n, err)
		}
		relErr := math.Abs(apRes.Estimate-truth) / truth

		t.AddRow(g.N(), exRes.Distinct, exRes.Comm.MaxPerNode, 1<<p, apRes.Comm.MaxPerNode,
			relErr, apRes.Sigma)
		xs = append(xs, float64(g.N()))
		exactBits = append(exactBits, float64(exRes.Comm.MaxPerNode))
		sketchBits = append(sketchBits, float64(apRes.Comm.MaxPerNode))
	}
	if len(xs) >= 3 {
		t.AddNote("Exact cost power-law exponent in N ≈ %.2f (linear predicted: ≈ 1); sketch exponent ≈ %.2f (flat predicted: ≈ 0).",
			stats.FitPowerLaw(xs, exactBits), stats.FitPowerLaw(xs, sketchBits))
	}
	return t, nil
}
