package experiments

import (
	"fmt"

	"sensoragg/internal/core"
	"sensoragg/internal/netsim"
	"sensoragg/internal/singlehop"
	"sensoragg/internal/stats"
	"sensoragg/internal/topology"
	"sensoragg/internal/workload"
)

// SingleHop is experiment E11 — the Singh–Prasanna [14] regime the paper's
// introduction cites: in a single-hop radio network an exact median needs
// each node to *transmit* only O(log N) bits, but every node *receives*
// O(N log N) bits by overhearing. The table sweeps N and reports both
// sides, against the multi-hop Fig. 1 protocol on the same item multiset —
// showing why the paper's per-node (send+receive) measure tells a
// different story than transmit-only energy accounting.
func SingleHop(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E11",
		Title:  "Single-hop selection ([14]): transmit-only vs send+receive accounting",
		Header: []string{"N", "tx b/node (1-hop)", "rx+tx b/node (1-hop)", "b/node (Fig.1 grid)", "exact"},
	}
	ns := sizes(cfg, []int{64, 256, 1024}, 256)
	var xs, rxtx []float64

	for _, n := range ns {
		maxX := uint64(4 * n)
		values := workload.Generate(workload.Uniform, n, maxX, cfg.Seed+uint64(n))
		sorted := core.SortedCopy(values)
		want := core.TrueMedian(sorted)

		// Single-hop network: complete graph, radio semantics.
		nwSH := netsim.New(topology.Complete(n), values, maxX, netsim.WithSeed(cfg.Seed))
		shRes, err := singlehop.Median(nwSH)
		if err != nil {
			return nil, fmt.Errorf("single-hop N=%d: %w", n, err)
		}
		exact := shRes.Value == want
		if !exact {
			t.AddNote("FAIL: single-hop N=%d returned %d, want %d", n, shRes.Value, want)
		}

		// Multi-hop Fig. 1 on a grid with the same items.
		net := simNet(topoGrid, n, workload.Uniform, maxX, cfg.Seed+uint64(n))
		nwGrid := net.Network()
		before := nwGrid.Meter.Snapshot()
		if _, err := core.Median(net); err != nil {
			return nil, fmt.Errorf("grid median N=%d: %w", n, err)
		}
		gridBits := nwGrid.Meter.Since(before).MaxPerNode

		t.AddRow(n, shRes.MaxTransmitBits, shRes.Comm.MaxPerNode, gridBits, exact)
		xs = append(xs, float64(n))
		rxtx = append(rxtx, float64(shRes.Comm.MaxPerNode))
	}
	if len(xs) >= 3 {
		t.AddNote("Single-hop send+receive grows with power-law exponent ≈ %.2f in N (overhearing is Θ(N·log X)), while transmit-only stays O(log X).",
			stats.FitPowerLaw(xs, rxtx))
	}
	t.AddNote("Under the paper's §2.1 measure (send+receive) the single-hop protocol is linear — the reason [14] optimizes a different quantity (transmit energy balance).")
	return t, nil
}
