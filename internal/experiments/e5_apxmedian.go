package experiments

import (
	"fmt"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// ApxMedianGuarantee is experiment E5 — Theorem 4.5: APX MEDIAN returns an
// (α, β)-median with α = 3σ, β = 1/N, with probability ≥ 1−ε. Repeated
// trials per ε measure the success rate against the guarantee and the
// measured rank error against the 3σ band.
func ApxMedianGuarantee(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E5",
		Title:  "APX MEDIAN (Theorem 4.5): success rate vs ε, rank error vs 3σ",
		Header: []string{"ε", "trials", "success", "guarantee", "mean αNeeded", "3σ band", "b/node", "instances"},
	}
	n := 4096
	numTrials := trials(cfg, 60, 10)
	epsilons := []float64{0.5, 0.25, 0.1}
	if cfg.Quick {
		n = 512
		epsilons = epsilons[:2]
	}
	maxX := uint64(4 * n)
	g := buildGraph(topoGrid, n, cfg.Seed)
	values := workload.Generate(workload.Uniform, g.N(), maxX, cfg.Seed)
	sorted := core.SortedCopy(values)
	kMedian := float64(len(values)) / 2

	for _, eps := range epsilons {
		successes := 0
		var alphas, bitsPer, instances []float64
		var sigma float64
		for trial := 0; trial < numTrials; trial++ {
			nw := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed+uint64(trial)*31+uint64(eps*1000)))
			net := agg.NewNet(spantree.NewFast(nw))
			sigma = net.ApxSigma()

			before := nw.Meter.Snapshot()
			res, err := core.ApxMedian(net, core.ApxParams{Epsilon: eps})
			if err != nil {
				return nil, fmt.Errorf("apx median eps=%g: %w", eps, err)
			}
			d := nw.Meter.Since(before)

			beta := core.BetaNeeded(sorted, kMedian, 3*sigma, res.Value, maxX)
			if beta <= 1.0/float64(len(values))+1e-9 {
				successes++
			}
			alphas = append(alphas, core.AlphaNeeded(sorted, kMedian, res.Value))
			bitsPer = append(bitsPer, float64(d.MaxPerNode))
			instances = append(instances, float64(res.Instances))
		}
		t.AddRow(eps, numTrials,
			fmt.Sprintf("%.2f", float64(successes)/float64(numTrials)),
			fmt.Sprintf(">= %.2f", 1-eps),
			stats.Mean(alphas),
			3*sigma,
			stats.Mean(bitsPer),
			stats.Mean(instances))
	}
	t.AddNote("Success = output is a (3σ, 1/N)-median per Definition 2.4; Theorem 4.5 demands rate ≥ 1−ε.")
	t.AddNote("Repetition counts per Fig. 2 with the ⌈3·2q⌉ reading of the iteration repetition (see core.ApxParams).")
	return t, nil
}
