// Package experiments regenerates the paper's "evaluation": the paper is a
// theory note whose results are complexity theorems, so each experiment
// measures the corresponding protocol on the simulator and checks the
// predicted *shape* — growth exponents, who wins, where crossovers fall.
// The experiment IDs (E1–E17) are indexed in DESIGN.md; cmd/experiments
// renders all tables for EXPERIMENTS.md, and bench_test.go exposes each as
// a benchmark. E14–E17 exercise the internal/faults subsystem: crash
// healing, loss sweeps, duplicate-insensitive sketches, and the
// Byzantine-robust tier, all through the engine's fault plans.
package experiments

import (
	"fmt"
	"runtime"
	"sort"
	"sync"

	"sensoragg/internal/agg"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/stats"
	"sensoragg/internal/topology"
	"sensoragg/internal/workload"
)

// Config scales the experiment suite.
type Config struct {
	// Quick trims sweeps and trial counts for CI-speed runs.
	Quick bool
	// Seed drives all randomness.
	Seed uint64
}

// Runner produces one experiment table.
type Runner func(cfg Config) (*stats.Table, error)

// registry maps experiment IDs to runners, in report order.
var registry = []struct {
	ID     string
	Runner Runner
}{
	{"E1", Primitives},
	{"E2", ApxCountAccuracy},
	{"E3", DeterministicMedian},
	{"E4", OrderStatistics},
	{"E5", ApxMedianGuarantee},
	{"E6", ApxMedian2Scaling},
	{"E7", CountDistinct},
	{"E8", Disjointness},
	{"E9", MedianShootout},
	{"E10", Duplication},
	{"E11", SingleHop},
	{"E12", Ablations},
	{"E13", Lifetime},
	{"E14", SelfHealing},
	{"E15", FaultSweep},
	{"E16", DuplicationSketches},
	{"E17", ByzantineSweep},
}

// IDs returns the experiment IDs in report order.
func IDs() []string {
	ids := make([]string, len(registry))
	for i, e := range registry {
		ids[i] = e.ID
	}
	return ids
}

// Lookup returns the runner for an ID (case-sensitive).
func Lookup(id string) (Runner, bool) {
	for _, e := range registry {
		if e.ID == id {
			return e.Runner, true
		}
	}
	return nil, false
}

// RunAll executes every experiment and returns the tables in report order.
func RunAll(cfg Config) ([]*stats.Table, error) {
	return RunConcurrent(cfg, IDs(), 1, nil)
}

// RunConcurrent executes the experiments named by ids on a worker pool of
// the given size (0 → GOMAXPROCS) and returns their tables in ids order.
// Experiments are independent — each builds its own networks — so they
// parallelize cleanly; determinism is per-experiment, seeded from cfg.
// onStart, when non-nil, is called as each experiment is picked up (it may
// be called from multiple goroutines). The first error is reported after
// all in-flight experiments finish.
func RunConcurrent(cfg Config, ids []string, workers int, onStart func(id string)) ([]*stats.Table, error) {
	runners := make([]Runner, len(ids))
	for i, id := range ids {
		r, ok := Lookup(id)
		if !ok {
			return nil, fmt.Errorf("experiments: unknown experiment %q (known: %v)", id, IDs())
		}
		runners[i] = r
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}

	tables := make([]*stats.Table, len(ids))
	errs := make([]error, len(ids))
	idx := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range idx {
				if onStart != nil {
					onStart(ids[i])
				}
				t, err := runners[i](cfg)
				if err != nil {
					errs[i] = fmt.Errorf("experiments: %s: %w", ids[i], err)
					continue
				}
				tables[i] = t
			}
		}()
	}
	for i := range runners {
		idx <- i
	}
	close(idx)
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return tables, nil
}

// topoKind names the network shapes the sweeps use.
type topoKind string

const (
	topoLine topoKind = "line"
	topoGrid topoKind = "grid"
	topoRGG  topoKind = "rgg"
)

// buildGraph constructs a graph of the given kind with ~n nodes.
func buildGraph(kind topoKind, n int, seed uint64) *topology.Graph {
	switch kind {
	case topoLine:
		return topology.Line(n)
	case topoGrid:
		side := intSqrt(n)
		return topology.Grid(side, side)
	case topoRGG:
		return topology.RandomGeometric(n, 0, seed)
	default:
		panic(fmt.Sprintf("experiments: unknown topology %q", kind))
	}
}

func intSqrt(n int) int {
	s := 1
	for (s+1)*(s+1) <= n {
		s++
	}
	return s
}

// simNet assembles a simulated network + primitive-protocol provider.
func simNet(kind topoKind, n int, wl workload.Kind, maxX uint64, seed uint64, opts ...agg.Option) *agg.Net {
	g := buildGraph(kind, n, seed)
	values := workload.Generate(wl, g.N(), maxX, seed)
	nw := netsim.New(g, values, maxX, netsim.WithSeed(seed))
	return agg.NewNet(spantree.NewFast(nw), opts...)
}

// sizes returns the N sweep for an experiment: quick mode caps the range.
func sizes(cfg Config, full []int, quickMax int) []int {
	if !cfg.Quick {
		return full
	}
	out := make([]int, 0, len(full))
	for _, n := range full {
		if n <= quickMax {
			out = append(out, n)
		}
	}
	if len(out) == 0 {
		out = append(out, quickMax)
	}
	return out
}

func trials(cfg Config, full, quick int) int {
	if cfg.Quick {
		return quick
	}
	return full
}

// sortedFloats converts and sorts uint64 values for ground-truth checks.
func sortedFloats(values []uint64) []float64 {
	out := make([]float64, len(values))
	for i, v := range values {
		out[i] = float64(v)
	}
	sort.Float64s(out)
	return out
}
