package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsQuick runs every experiment in quick mode end-to-end:
// each must produce a well-formed table with rows and no FAIL notes.
func TestAllExperimentsQuick(t *testing.T) {
	cfg := Config{Quick: true, Seed: 1}
	tables, err := RunAll(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(IDs()) {
		t.Fatalf("got %d tables, want %d", len(tables), len(IDs()))
	}
	for i, table := range tables {
		if table.ID != IDs()[i] {
			t.Errorf("table %d has ID %s, want %s", i, table.ID, IDs()[i])
		}
		if len(table.Rows) == 0 {
			t.Errorf("%s: no rows", table.ID)
		}
		for _, row := range table.Rows {
			if len(row) != len(table.Header) {
				t.Errorf("%s: row width %d != header width %d", table.ID, len(row), len(table.Header))
			}
		}
		for _, note := range table.Notes {
			if strings.Contains(note, "FAIL") {
				t.Errorf("%s: %s", table.ID, note)
			}
		}
		var sb strings.Builder
		if err := table.Render(&sb); err != nil {
			t.Errorf("%s: render: %v", table.ID, err)
		}
		if !strings.Contains(sb.String(), table.Title) {
			t.Errorf("%s: rendered output missing title", table.ID)
		}
	}
}

func TestLookup(t *testing.T) {
	for _, id := range IDs() {
		if _, ok := Lookup(id); !ok {
			t.Errorf("Lookup(%s) failed", id)
		}
	}
	if _, ok := Lookup("E99"); ok {
		t.Error("Lookup(E99) should fail")
	}
}

func TestBuildGraphKinds(t *testing.T) {
	for _, kind := range []topoKind{topoLine, topoGrid, topoRGG} {
		g := buildGraph(kind, 100, 1)
		if g.N() == 0 || !g.Connected() {
			t.Errorf("%s: bad graph", kind)
		}
	}
}

func TestSizesQuickCaps(t *testing.T) {
	full := []int{256, 1024, 4096}
	got := sizes(Config{Quick: true}, full, 1024)
	for _, n := range got {
		if n > 1024 {
			t.Errorf("quick mode produced size %d", n)
		}
	}
	if len(sizes(Config{}, full, 1024)) != 3 {
		t.Error("full mode truncated sweep")
	}
}
