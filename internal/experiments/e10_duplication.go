package experiments

import (
	"fmt"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/faults"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/stats"
	"sensoragg/internal/wire"
	"sensoragg/internal/workload"
)

// Duplication is experiment E10 — the robustness observation of Considine
// et al. [2] and Nath et al. [10] that frames the paper's Section 2.2
// choice of sketches: under link-layer duplication, MAX (idempotent) and
// the LogLog sketch (idempotent merge) are unaffected, while COUNT and SUM
// are corrupted in proportion to the duplication rate.
func Duplication(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E10",
		Title:  "Duplicate-insensitivity ([2],[10]): aggregate error vs duplication rate",
		Header: []string{"dup rate", "max err", "count err", "sum err", "sketch err"},
	}
	n := 1024
	if cfg.Quick {
		n = 256
	}
	maxX := uint64(4 * n)
	g := buildGraph(topoGrid, n, cfg.Seed)
	values := workload.Generate(workload.Uniform, g.N(), maxX, cfg.Seed)

	var wantMax, wantSum float64
	for _, v := range values {
		if float64(v) > wantMax {
			wantMax = float64(v)
		}
		wantSum += float64(v)
	}
	wantCount := float64(len(values))

	// Reference sketch estimate on reliable links (the sketch is an
	// estimator: the robustness claim is that duplication does not move it
	// at all, so compare against the fault-free estimate, not the truth).
	refNet := agg.NewNet(spantree.NewFast(netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed))), agg.WithHonestSketches())
	refSketch := refNet.ApxCount(core.Linear, wire.True())

	for _, dup := range []float64{0, 0.05, 0.2, 0.5} {
		nw := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed))
		nw.Faults = faults.New(faults.Spec{Dup: dup}, nw.N(), nw.Root(), cfg.Seed)
		net := agg.NewNet(spantree.NewFast(nw), agg.WithHonestSketches())

		_, gotMax, ok := net.MinMax(core.Linear)
		if !ok {
			return nil, fmt.Errorf("duplication: empty MinMax")
		}
		gotCount := float64(net.Count(core.Linear, wire.True()))
		gotSum := float64(net.Sum(core.Linear, wire.True()))
		gotSketch := net.ApxCount(core.Linear, wire.True())

		t.AddRow(dup,
			stats.RelErr(float64(gotMax), wantMax),
			stats.RelErr(gotCount, wantCount),
			stats.RelErr(gotSum, wantSum),
			stats.RelErr(gotSketch, refSketch))
	}
	t.AddNote("MAX and the LogLog sketch are unchanged at every duplication rate (idempotent merges); COUNT and SUM inflate *exponentially in path length* — each hop re-doubles with probability p, so (1+p)^depth — the [2]/[10] motivation for ODI synopses.")
	return t, nil
}
