package experiments

import (
	"fmt"
	"math"

	"sensoragg/internal/agg"
	"sensoragg/internal/baseline"
	"sensoragg/internal/core"
	"sensoragg/internal/gk"
	"sensoragg/internal/gossip"
	"sensoragg/internal/netsim"
	"sensoragg/internal/qdigest"
	"sensoragg/internal/sampling"
	"sensoragg/internal/spantree"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// MedianShootout is experiment E9 — the paper's Section 1 comparison as a
// measured table: every median protocol in the repository on the same
// input. The shape to verify: collect-all is the per-node-cost outlier
// (linear); the paper's deterministic search beats the one-pass GK summary
// for exactness at lower cost; sampling and gossip land in between with
// approximate answers; APX MEDIAN/APX MEDIAN2 trade enormous constants for
// N-independence (their asymptotic win — see E6 for the scaling evidence).
func MedianShootout(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E9",
		Title:  "Median protocol shoot-out (§1): same input, every protocol",
		Header: []string{"protocol", "value", "rank err (α)", "exact", "b/node", "total Kb", "paper ref"},
	}
	n := 4096
	if cfg.Quick {
		n = 1024
	}
	maxX := uint64(4 * n)
	g := buildGraph(topoGrid, n, cfg.Seed)
	values := workload.Generate(workload.Uniform, g.N(), maxX, cfg.Seed)
	sorted := core.SortedCopy(values)
	med := core.TrueMedian(sorted)
	kMedian := float64(len(values)) / 2

	fresh := func() *netsim.Network {
		return netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed+77))
	}
	addRow := func(name string, value uint64, d netsim.Delta, ref string) {
		alpha := core.AlphaNeeded(sorted, kMedian, value)
		t.AddRow(name, value, alpha, value == med, d.MaxPerNode, float64(d.TotalBits)/1000, ref)
	}

	// 1. Collect-all (TAG holistic baseline).
	{
		nw := fresh()
		res, err := baseline.CollectAllMedian(spantree.NewFast(nw))
		if err != nil {
			return nil, fmt.Errorf("collect-all: %w", err)
		}
		addRow("collect-all", res.Value, res.Comm, "TAG [9]")
	}
	// 2. Deterministic binary search (the paper, Fig. 1).
	{
		nw := fresh()
		net := agg.NewNet(spantree.NewFast(nw))
		before := nw.Meter.Snapshot()
		res, err := core.Median(net)
		if err != nil {
			return nil, fmt.Errorf("det median: %w", err)
		}
		addRow("median (Fig.1)", res.Value, nw.Meter.Since(before), "Thm 3.2")
	}
	// 3. GK summary aggregation.
	{
		nw := fresh()
		res, err := gk.MedianProtocol(spantree.NewFast(nw), 24)
		if err != nil {
			return nil, fmt.Errorf("gk: %w", err)
		}
		addRow("gk-summary(s=24)", res.Value, res.Comm, "GK [4]")
	}
	// 3b. q-digest aggregation (Shrivastava et al., SenSys 2004).
	{
		nw := fresh()
		res, err := qdigest.MedianProtocol(spantree.NewFast(nw), 16)
		if err != nil {
			return nil, fmt.Errorf("qdigest: %w", err)
		}
		addRow("q-digest(k=16)", res.Value, res.Comm, "SBAS'04")
	}
	// 4. Bottom-k sampling.
	{
		nw := fresh()
		res, err := sampling.Median(spantree.NewFast(nw), 128, cfg.Seed)
		if err != nil {
			return nil, fmt.Errorf("sampling: %w", err)
		}
		addRow("sampling(k=128)", res.Value, res.Comm, "Nath [10]")
	}
	// 5. Gossip push-sum binary search (on the same grid: mixing is slow,
	// so give it diameter-scaled rounds).
	{
		nw := fresh()
		rounds := 6 * int(math.Sqrt(float64(g.N())))
		res, err := gossip.Median(nw, gossip.Params{Rounds: rounds})
		if err != nil {
			return nil, fmt.Errorf("gossip: %w", err)
		}
		addRow("gossip push-sum", res.Value, res.Comm, "Kempe [6]")
	}
	// 6. APX MEDIAN (Fig. 2).
	{
		nw := fresh()
		net := agg.NewNet(spantree.NewFast(nw))
		before := nw.Meter.Snapshot()
		res, err := core.ApxMedian(net, core.ApxParams{Epsilon: 0.25})
		if err != nil {
			return nil, fmt.Errorf("apx median: %w", err)
		}
		addRow("apx-median (Fig.2)", res.Value, nw.Meter.Since(before), "Thm 4.5")
	}
	// 7. APX MEDIAN2 (Fig. 4).
	{
		nw := fresh()
		net := agg.NewNet(spantree.NewFast(nw))
		before := nw.Meter.Snapshot()
		res, err := core.ApxMedian2(net, core.Apx2Params{Beta: 1.0 / 16, Epsilon: 0.25})
		if err != nil {
			return nil, fmt.Errorf("apx median2: %w", err)
		}
		addRow("apx-median2 (Fig.4)", res.Value, nw.Meter.Since(before), "Cor 4.8")
	}

	t.AddNote("True median: %d (N=%d, uniform over [0,%d], grid topology).", med, g.N(), maxX)
	t.AddNote("Collect-all's b/node is the linear outlier; Fig. 1 is exact at polylog cost; the randomized protocols' constants dominate at this N — their asymptotic advantage is the flatness shown in E6.")
	return t, nil
}
