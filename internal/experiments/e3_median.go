package experiments

import (
	"fmt"

	"sensoragg/internal/core"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// DeterministicMedian is experiment E3 — Theorem 3.2: the Fig. 1 binary
// search computes the exact median with O((log N)^2) bits per node. The
// sweep varies N and the input distribution; exactness must be 100% and
// the fitted (log N)-exponent ≈ 2.
func DeterministicMedian(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E3",
		Title:  "Deterministic median (Theorem 3.2): bits/node vs N, exactness",
		Header: []string{"workload", "N", "b/node", "total Kb", "iterations", "exact"},
	}
	ns := sizes(cfg, []int{256, 1024, 4096, 16384, 65536, 262144}, 1024)
	wls := []workload.Kind{workload.Uniform, workload.Zipf, workload.Bimodal, workload.FewDistinct}
	if cfg.Quick {
		wls = wls[:2]
	}

	exactAll := true
	for _, wl := range wls {
		var xs, bits []float64
		for _, n := range ns {
			// Domain grows with N per the §2.1 assumption log X = O(log N).
			maxX := uint64(4 * n)
			net := simNet(topoGrid, n, wl, maxX, cfg.Seed+uint64(n))
			nw := net.Network()

			before := nw.Meter.Snapshot()
			res, err := core.Median(net)
			if err != nil {
				return nil, fmt.Errorf("median on %s N=%d: %w", wl, n, err)
			}
			d := nw.Meter.Since(before)

			sorted := core.SortedCopy(nw.AllItems())
			exact := core.IsMedian(sorted, res.Value) && res.Value == core.TrueMedian(sorted)
			exactAll = exactAll && exact
			t.AddRow(string(wl), nw.N(), d.MaxPerNode, float64(d.TotalBits)/1000, res.Iterations, exact)
			xs = append(xs, float64(nw.N()))
			bits = append(bits, float64(d.MaxPerNode))
		}
		if len(xs) >= 3 {
			t.AddNote("%s: (log N)-exponent ≈ %.2f (Theorem 3.2 predicts ≈ 2)", wl, stats.FitPolyLog(xs, bits))
		}
	}
	if exactAll {
		t.AddNote("Exactness: 100%% across all runs, as the theorem requires.")
	} else {
		t.AddNote("FAIL: some runs returned a non-median value.")
	}
	return t, nil
}
