package experiments

import (
	"fmt"

	"sensoragg/internal/agg"
	"sensoragg/internal/baseline"
	"sensoragg/internal/core"
	"sensoragg/internal/energy"
	"sensoragg/internal/gk"
	"sensoragg/internal/netsim"
	"sensoragg/internal/qdigest"
	"sensoragg/internal/sampling"
	"sensoragg/internal/spantree"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// Lifetime is experiment E13 — the paper's §1 motivation in battery units:
// queries until the first node dies (the hot node next to the root), per
// median protocol, under a mote-class radio model. Two columns, because
// the cost model matters: bits-only (the paper's measure) and with a
// per-message preamble overhead, which penalizes multi-pass protocols.
func Lifetime(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E13",
		Title:  "Network lifetime: queries until first node death (mote radio model)",
		Header: []string{"protocol", "N", "queries (bits-only)", "queries (+msg overhead)", "bottleneck node"},
	}
	ns := sizes(cfg, []int{1024, 16384}, 1024)
	bitsOnly := energy.MoteDefaults()
	bitsOnly.PerMessage = 0
	withOverhead := energy.MoteDefaults()

	type protocol struct {
		name string
		run  func(nw *netsim.Network) error
	}
	protocols := []protocol{
		{"median (Fig.1)", func(nw *netsim.Network) error {
			_, err := core.Median(agg.NewNet(spantree.NewFast(nw)))
			return err
		}},
		{"collect-all", func(nw *netsim.Network) error {
			_, err := baseline.CollectAllMedian(spantree.NewFast(nw))
			return err
		}},
		{"gk-summary(s=24)", func(nw *netsim.Network) error {
			_, err := gk.MedianProtocol(spantree.NewFast(nw), 24)
			return err
		}},
		{"q-digest(k=16)", func(nw *netsim.Network) error {
			_, err := qdigest.MedianProtocol(spantree.NewFast(nw), 16)
			return err
		}},
		{"sampling(k=128)", func(nw *netsim.Network) error {
			_, err := sampling.Median(spantree.NewFast(nw), 128, cfg.Seed)
			return err
		}},
	}

	for _, n := range ns {
		g := buildGraph(topoGrid, n, cfg.Seed)
		maxX := uint64(4 * n)
		values := workload.Generate(workload.Uniform, g.N(), maxX, cfg.Seed)
		for _, p := range protocols {
			nw := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed))
			if err := p.run(nw); err != nil {
				return nil, fmt.Errorf("%s at N=%d: %w", p.name, n, err)
			}
			qBits, node, err := bitsOnly.Lifetime(nw.Meter)
			if err != nil {
				return nil, fmt.Errorf("%s lifetime: %w", p.name, err)
			}
			qOver, _, err := withOverhead.Lifetime(nw.Meter)
			if err != nil {
				return nil, fmt.Errorf("%s lifetime: %w", p.name, err)
			}
			t.AddRow(p.name, g.N(), qBits, qOver, fmt.Sprintf("node %d", node))
		}
	}
	t.AddNote("Bits-only is the paper's §2.1 measure: the one-pass summaries and Fig. 1 dominate collect-all, and the gap widens with N.")
	t.AddNote("With a 0.1 mJ per-message preamble, message *count* matters too: the multi-pass Fig. 1 search pays ~2·⌈log X⌉ messages per node per query, which the paper's bit measure abstracts away — an honest limitation of bit-only accounting on real radios.")
	return t, nil
}
