package experiments

import (
	"fmt"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/distinct"
	"sensoragg/internal/gossip"
	"sensoragg/internal/loglog"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/stats"
	"sensoragg/internal/topology"
	"sensoragg/internal/wire"
	"sensoragg/internal/workload"
)

// Ablations is experiment E12 — the design choices DESIGN.md calls out,
// each toggled in isolation:
//
//	(a) spanning-tree degree bounding (the remark after Fact 2.1),
//	(b) LogLog vs HyperLogLog as the α-counting estimator,
//	(c) the ⌈3·2q⌉ vs ⌈32q⌉ reading of Fig. 2's repetition count,
//	(d) tree-based vs gossip-based sketch aggregation for COUNT DISTINCT.
func Ablations(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E12",
		Title:  "Ablations: degree bounding, estimator, repetition reading, tree vs gossip",
		Header: []string{"ablation", "variant", "metric", "value"},
	}
	if err := ablateDegreeBound(cfg, t); err != nil {
		return nil, err
	}
	if err := ablateEstimator(cfg, t); err != nil {
		return nil, err
	}
	if err := ablateRepScale(cfg, t); err != nil {
		return nil, err
	}
	if err := ablateTreeVsGossip(cfg, t); err != nil {
		return nil, err
	}
	return t, nil
}

// (a) Degree bounding: COUNT on a star. Unbounded, the hub pays Θ(N);
// bounded, every node pays O(maxChildren · log N) — at the price of tree
// height.
func ablateDegreeBound(cfg Config, t *stats.Table) error {
	n := 2048
	if cfg.Quick {
		n = 512
	}
	g := topology.Star(n)
	maxX := uint64(4 * n)
	values := workload.Generate(workload.Uniform, n, maxX, cfg.Seed)
	for _, bound := range []int{0, 2, 8, 64} {
		nw := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed), netsim.WithMaxChildren(bound))
		net := agg.NewNet(spantree.NewFast(nw))
		before := nw.Meter.Snapshot()
		net.Count(core.Linear, wire.True())
		d := nw.Meter.Since(before)
		label := fmt.Sprintf("maxChildren=%d", bound)
		if bound == 0 {
			label = "unbounded"
		}
		t.AddRow("degree-bound (star COUNT)", label,
			fmt.Sprintf("b/node, height %d", nw.Tree.Height()), d.MaxPerNode)
	}
	t.AddNote("(a) Fact 2.1's remark: without bounding, the star hub pays Θ(N·log N) for a single COUNT; bounding trades tree height for per-node cost.")
	return nil
}

// (b) Estimator: APX MEDIAN success under LogLog vs HLL at the same m.
func ablateEstimator(cfg Config, t *stats.Table) error {
	n := 2048
	numTrials := trials(cfg, 30, 8)
	if cfg.Quick {
		n = 512
	}
	maxX := uint64(4 * n)
	g := buildGraph(topoGrid, n, cfg.Seed)
	values := workload.Generate(workload.Uniform, g.N(), maxX, cfg.Seed)
	sorted := core.SortedCopy(values)
	k := float64(len(values)) / 2

	for _, est := range []loglog.Estimator{loglog.EstLogLog, loglog.EstHLL} {
		success := 0
		for trial := 0; trial < numTrials; trial++ {
			nw := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed+uint64(trial)))
			net := agg.NewNet(spantree.NewFast(nw), agg.WithEstimator(est))
			res, err := core.ApxMedian(net, core.ApxParams{Epsilon: 0.25})
			if err != nil {
				return fmt.Errorf("estimator ablation (%v): %w", est, err)
			}
			if core.BetaNeeded(sorted, k, 3*net.ApxSigma(), res.Value, maxX) <= 1.0/float64(len(values))+1e-9 {
				success++
			}
		}
		t.AddRow("estimator (APX MEDIAN)", est.String(), "success rate (ε=0.25)",
			fmt.Sprintf("%.2f", float64(success)/float64(numTrials)))
	}
	t.AddNote("(b) At this scale the sketch load n/m is ≈1, deep in plain LogLog's biased small-range regime: its bias violates the α_c < σ/2 premise of Section 4 and the Fig. 2 guarantee collapses, while HLL's linear-counting correction restores Definition 2.1 and the success rate. This is why HLL is the protocol default.")
	return nil
}

// (c) Repetition reading: cost and success of Fig. 2 under r = 6q vs 32q.
func ablateRepScale(cfg Config, t *stats.Table) error {
	n := 1024
	numTrials := trials(cfg, 20, 6)
	if cfg.Quick {
		n = 512
	}
	maxX := uint64(4 * n)
	g := buildGraph(topoGrid, n, cfg.Seed)
	values := workload.Generate(workload.Uniform, g.N(), maxX, cfg.Seed)
	sorted := core.SortedCopy(values)
	k := float64(len(values)) / 2

	for _, scale := range []float64{6, 32} {
		success := 0
		var bits []float64
		for trial := 0; trial < numTrials; trial++ {
			nw := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed+uint64(trial)*3))
			net := agg.NewNet(spantree.NewFast(nw))
			before := nw.Meter.Snapshot()
			res, err := core.ApxMedian(net, core.ApxParams{Epsilon: 0.25, RepScaleIter: scale})
			if err != nil {
				return fmt.Errorf("rep-scale ablation (%g): %w", scale, err)
			}
			bits = append(bits, float64(nw.Meter.Since(before).MaxPerNode))
			if core.BetaNeeded(sorted, k, 3*net.ApxSigma(), res.Value, maxX) <= 1.0/float64(len(values))+1e-9 {
				success++
			}
		}
		t.AddRow("Fig.2 repetition (r-scale)", fmt.Sprintf("⌈%gq⌉", scale),
			fmt.Sprintf("success %.2f", float64(success)/float64(numTrials)),
			stats.Mean(bits))
	}
	t.AddNote("(c) The conference text's “32q” vs the 6q implied by Lemma 4.3: 32q costs ≈5.3× more bits for the same empirical success — supporting the 3·2q reading.")
	return nil
}

// (d) Tree vs gossip sketch aggregation for COUNT DISTINCT.
func ablateTreeVsGossip(cfg Config, t *stats.Table) error {
	n := 1024
	if cfg.Quick {
		n = 256
	}
	maxX := uint64(8 * n)
	g := topology.RandomGeometric(n, 0, cfg.Seed)
	values := workload.Generate(workload.Uniform, g.N(), maxX, cfg.Seed)
	truth := float64(core.TrueDistinct(values))
	const p = 8

	nwTree := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed))
	treeRes, err := distinct.Approximate(spantree.NewFast(nwTree), p, loglog.EstHLL, cfg.Seed)
	if err != nil {
		return fmt.Errorf("tree distinct: %w", err)
	}
	t.AddRow("distinct aggregation", "tree convergecast",
		fmt.Sprintf("rel err %.3f", stats.RelErr(treeRes.Estimate, truth)), treeRes.Comm.MaxPerNode)

	nwGossip := netsim.New(g, values, maxX, netsim.WithSeed(cfg.Seed))
	const rounds = 240 // generous for an RGG's mixing time at these sizes
	gossipRes := gossip.Distinct(nwGossip, p, loglog.EstHLL, cfg.Seed, gossip.Params{Rounds: rounds})
	t.AddRow("distinct aggregation", "gossip (no tree)",
		fmt.Sprintf("rel err %.3f", stats.RelErr(gossipRes.Estimate, truth)), gossipRes.Comm.MaxPerNode)
	t.AddNote("(d) Gossip needs no spanning tree and survives duplication by idempotence ([2]) but multiplies sketch traffic by the round count.")
	return nil
}
