package experiments

import (
	"context"
	"fmt"

	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// DuplicationSketches is experiment E16 — E10's robustness observation
// re-run through the whole engine stack via fault plans: under message
// duplication, the idempotent aggregates (MAX, exact distinct's set union,
// the LogLog sketch) are bit-identical to the clean run, while COUNT
// inflates. This is the paper's §2.2 motivation measured end-to-end:
// sketch aggregates return correct answers no matter how unreliable the
// links are about delivering each message once.
func DuplicationSketches(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E16",
		Title:  "Duplicate-insensitivity through the engine: sketches vs COUNT under duplication",
		Header: []string{"dup rate", "count err", "max", "distinct", "apx distinct"},
	}
	n := 1024
	if cfg.Quick {
		n = 256
	}
	eng := engine.New(engine.Options{})
	run := func(dup float64, kind string) (engine.Result, error) {
		spec := engine.Spec{
			Topology: "grid", N: n, Workload: string(workload.FewDistinct),
			Seed: cfg.Seed, Faults: faults.Spec{Dup: dup},
		}
		r := eng.Submit(context.Background(), []engine.Job{{Spec: spec, Query: engine.Query{Kind: kind}}})[0]
		if r.Failed() {
			return r, fmt.Errorf("dupsketches: %s at dup %.1f: %s", kind, dup, r.Error)
		}
		return r, nil
	}

	clean, err := run(0, engine.KindApxDistinct)
	if err != nil {
		return nil, err
	}
	mark := func(ok bool) string {
		if ok {
			return "✓ exact"
		}
		return "✗"
	}
	for _, dup := range []float64{0, 0.1, 0.3} {
		cnt, err := run(dup, engine.KindCount)
		if err != nil {
			return nil, err
		}
		max, err := run(dup, engine.KindMax)
		if err != nil {
			return nil, err
		}
		dis, err := run(dup, engine.KindDistinct)
		if err != nil {
			return nil, err
		}
		apx, err := run(dup, engine.KindApxDistinct)
		if err != nil {
			return nil, err
		}
		if !max.Exact || !dis.Exact || apx.Value != clean.Value {
			t.AddNote("FAIL: dup %.1f — max exact=%v distinct exact=%v sketch %g vs clean %g",
				dup, max.Exact, dis.Exact, apx.Value, clean.Value)
		}
		t.AddRow(dup, stats.RelErr(cnt.Value, cnt.Truth), mark(max.Exact), mark(dis.Exact),
			fmt.Sprintf("%s (stable)", engine.FormatValue(apx.Value)))
	}
	t.AddNote("MAX, set-union DISTINCT, and the LogLog sketch merge idempotently, so a partial merged twice changes nothing; COUNT re-doubles with probability p at every hop.")
	return t, nil
}
