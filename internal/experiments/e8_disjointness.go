package experiments

import (
	"fmt"

	"sensoragg/internal/distinct"
	"sensoragg/internal/stats"
)

// Disjointness is experiment E8 — Theorem 5.1's reduction made concrete:
// Set Disjointness instances run through COUNT DISTINCT on a 2n-node line,
// measuring the bits crossing the middle edge. The exact protocol must
// decide perfectly and push Ω(n) bits across the cut; the sketch protocol
// crosses O(m log log n) bits but cannot separate the 1-element gap, so its
// accuracy collapses toward chance — which is exactly why cheap approximate
// protocols do not contradict the lower bound.
func Disjointness(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E8",
		Title:  "Set Disjointness reduction (Theorem 5.1): cut bits and decision accuracy",
		Header: []string{"protocol", "n", "cut bits (mean)", "accuracy"},
	}
	ns := sizes(cfg, []int{64, 256, 1024, 4096}, 256)
	numTrials := trials(cfg, 10, 3)

	var xs, cuts []float64
	for _, n := range ns {
		h := distinct.DisjointnessHarness{SetSize: n, SketchP: -1, Seed: cfg.Seed + uint64(n)}
		acc, cut, err := h.Accuracy(numTrials)
		if err != nil {
			return nil, fmt.Errorf("exact disjointness n=%d: %w", n, err)
		}
		if acc != 1 {
			t.AddNote("FAIL: exact protocol accuracy %.2f at n=%d", acc, n)
		}
		t.AddRow("exact", n, cut, fmt.Sprintf("%.2f", acc))
		xs = append(xs, float64(n))
		cuts = append(cuts, cut)
	}
	for _, n := range ns {
		h := distinct.DisjointnessHarness{SetSize: n, SketchP: 6, Seed: cfg.Seed + uint64(n)}
		acc, cut, err := h.Accuracy(numTrials)
		if err != nil {
			return nil, fmt.Errorf("sketch disjointness n=%d: %w", n, err)
		}
		t.AddRow("sketch(m=64)", n, cut, fmt.Sprintf("%.2f", acc))
	}
	if len(xs) >= 3 {
		t.AddNote("Exact cut-bit power-law exponent in n ≈ %.2f (Theorem 5.1 forces ≥ 1).", stats.FitPowerLaw(xs, cuts))
	}
	t.AddNote("Sketch decisions must trend toward chance on the one-element gap — an exact-with-significant-probability counter would need Ω(n) (§5 closing remark).")
	return t, nil
}
