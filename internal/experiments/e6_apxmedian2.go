package experiments

import (
	"fmt"
	"math"

	"sensoragg/internal/core"
	"sensoragg/internal/stats"
	"sensoragg/internal/workload"
)

// ApxMedian2Scaling is experiment E6 — Theorem 4.7 / Corollary 4.8:
// APX MEDIAN2 computes an (α, β)-median in O((log log N)^3) bits per node.
// Part A sweeps N at fixed β and reports bits/node — the shape to check is
// near-flatness in N (vs the (log N)^2 growth of E3). Part B sweeps β at
// fixed N and reports the achieved value precision per zoom stage.
func ApxMedian2Scaling(cfg Config) (*stats.Table, error) {
	t := &stats.Table{
		ID:     "E6",
		Title:  "APX MEDIAN2 (Thm 4.7/Cor 4.8): polyloglog scaling and per-stage precision",
		Header: []string{"sweep", "N", "β", "stages", "b/node", "valerr/X", "interval/X"},
	}
	eps := 0.25
	baseBeta := 1.0 / 16

	// Part A: N sweep at fixed β.
	ns := sizes(cfg, []int{1024, 4096, 16384, 65536}, 1024)
	var xs, bits []float64
	for _, n := range ns {
		maxX := uint64(4 * n)
		row, err := runApx2(cfg, n, maxX, baseBeta, eps)
		if err != nil {
			return nil, err
		}
		t.AddRow("N", row.n, fmt.Sprintf("1/%d", int(1/baseBeta)), row.stages, row.bitsPerNode, row.valErr, row.interval)
		xs = append(xs, float64(row.n))
		bits = append(bits, row.bitsPerNode)
	}
	if len(xs) >= 3 {
		growth := bits[len(bits)-1] / bits[0]
		span := xs[len(xs)-1] / xs[0]
		t.AddNote("N sweep: ×%.0f more nodes changed bits/node by ×%.2f — near-flat, vs the Θ((log N)^2) growth of E3 (Corollary 4.8).", span, growth)
	}

	// Part B: β sweep at fixed N.
	nFixed := 16384
	if cfg.Quick {
		nFixed = 1024
	}
	for _, beta := range []float64{0.5, 1.0 / 4, 1.0 / 16, 1.0 / 64} {
		maxX := uint64(4 * nFixed)
		row, err := runApx2(cfg, nFixed, maxX, beta, eps)
		if err != nil {
			return nil, err
		}
		t.AddRow("β", row.n, fmt.Sprintf("1/%d", int(1/beta)), row.stages, row.bitsPerNode, row.valErr, row.interval)
	}
	t.AddNote("β sweep: each extra zoom stage should roughly halve the localized interval (Fig. 3's zoom; log(1/β) stages total).")
	t.AddNote("Rank error α grows as O(σ·log(1/β)) across stages (Theorem 4.7) — value error is the β guarantee checked here.")
	return t, nil
}

type apx2Row struct {
	n           int
	stages      int
	bitsPerNode float64
	valErr      float64
	interval    float64
}

func runApx2(cfg Config, n int, maxX uint64, beta, eps float64) (apx2Row, error) {
	net := simNet(topoGrid, n, workload.Uniform, maxX, cfg.Seed+uint64(n)+uint64(1/beta))
	nw := net.Network()
	sorted := core.SortedCopy(nw.AllItems())
	med := core.TrueMedian(sorted)

	before := nw.Meter.Snapshot()
	res, err := core.ApxMedian2(net, core.Apx2Params{Beta: beta, Epsilon: eps})
	if err != nil {
		return apx2Row{}, fmt.Errorf("apx median2 N=%d β=%g: %w", n, beta, err)
	}
	d := nw.Meter.Since(before)
	return apx2Row{
		n:           nw.N(),
		stages:      res.Stages,
		bitsPerNode: float64(d.MaxPerNode),
		valErr:      math.Abs(float64(res.Value)-float64(med)) / float64(maxX),
		interval:    (res.FinalHi - res.FinalLo) / float64(maxX),
	}, nil
}
