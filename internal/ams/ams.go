// Package ams implements the Alon–Matias–Szegedy "tug-of-war" sketch for
// the second frequency moment F₂ = Σ_v f_v² — the paper's reference [1],
// whose techniques underlie the approximate-counting toolbox of Section
// 2.2 (COUNT DISTINCT is the frequency moment F₀; AMS is the canonical
// estimator for F₂). F₂ measures how skewed the value distribution is
// (repeat rate / self-join size), a natural companion query for the
// duplicate-heavy workloads of Section 5.
//
// Each of the s = rows·cols counters accumulates Σ_v f_v·ξ(v) for a
// four-wise-independent ±1 hash ξ; squaring estimates F₂ with relative
// variance ≤ 2/cols after averaging a row, and the median of rows boosts
// confidence. Counters are linear, so sketches over disjoint multisets
// merge by addition — a convergecast-friendly (though *not* duplicate-
// insensitive) aggregate.
package ams

import (
	"fmt"
	"sort"

	"sensoragg/internal/bitio"
	"sensoragg/internal/hashing"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/wire"
)

// Sketch is an AMS tug-of-war sketch with rows×cols counters. The zero
// value is unusable; use New.
type Sketch struct {
	rows, cols int
	seed       uint64
	counters   []int64 // row-major
}

// New returns an empty sketch: cols controls variance (relative std dev
// ≈ √(2/cols)), rows the failure probability (median-of-rows).
func New(rows, cols int, seed uint64) *Sketch {
	if rows < 1 || cols < 1 {
		panic(fmt.Sprintf("ams: invalid shape %dx%d", rows, cols))
	}
	return &Sketch{rows: rows, cols: cols, seed: seed, counters: make([]int64, rows*cols)}
}

// sign returns the ±1 hash ξ_{r,c}(v). SplitMix64 mixing gives far more
// than the four-wise independence the analysis needs.
func (s *Sketch) sign(r, c int, v uint64) int64 {
	h := hashing.New(s.seed ^ uint64(r)<<32 ^ uint64(c))
	if h.Hash(v)&1 == 1 {
		return 1
	}
	return -1
}

// Add inserts one occurrence of value v.
func (s *Sketch) Add(v uint64) {
	for r := 0; r < s.rows; r++ {
		for c := 0; c < s.cols; c++ {
			s.counters[r*s.cols+c] += s.sign(r, c, v)
		}
	}
}

// Merge adds other's counters (same shape and seed required): valid
// because the counters are linear in the input multiset.
func (s *Sketch) Merge(other *Sketch) {
	if s.rows != other.rows || s.cols != other.cols || s.seed != other.seed {
		panic("ams: merging incompatible sketches")
	}
	for i, c := range other.counters {
		s.counters[i] += c
	}
}

// EstimateF2 returns the median over rows of the mean over columns of the
// squared counters.
func (s *Sketch) EstimateF2() float64 {
	rowEst := make([]float64, s.rows)
	for r := 0; r < s.rows; r++ {
		var sum float64
		for c := 0; c < s.cols; c++ {
			x := float64(s.counters[r*s.cols+c])
			sum += x * x
		}
		rowEst[r] = sum / float64(s.cols)
	}
	sort.Float64s(rowEst)
	mid := len(rowEst) / 2
	if len(rowEst)%2 == 1 {
		return rowEst[mid]
	}
	return (rowEst[mid-1] + rowEst[mid]) / 2
}

// counterBits is the fixed wire width of one counter (zig-zag encoded).
// Counters are bounded by N ≤ 2^31 items in magnitude.
const counterBits = 32

// EncodedBits returns the wire size of the sketch.
func (s *Sketch) EncodedBits() int { return len(s.counters) * counterBits }

// AppendTo serializes the counters (zig-zag fixed width).
func (s *Sketch) AppendTo(w *bitio.Writer) {
	for _, c := range s.counters {
		w.WriteBits(zigzag(c), counterBits)
	}
}

// DecodeInto parses counters serialized by AppendTo into a fresh sketch
// with the given shape and seed.
func DecodeInto(r *bitio.Reader, rows, cols int, seed uint64) (*Sketch, error) {
	s := New(rows, cols, seed)
	for i := range s.counters {
		v, err := r.ReadBits(counterBits)
		if err != nil {
			return nil, fmt.Errorf("ams: decoding counter %d: %w", i, err)
		}
		s.counters[i] = unzigzag(v)
	}
	return s, nil
}

func zigzag(v int64) uint64 {
	return uint64((v << 1) ^ (v >> 63))
}

func unzigzag(u uint64) int64 {
	return int64(u>>1) ^ -int64(u&1)
}

// TrueF2 computes Σ f_v² directly (ground truth for tests/experiments).
func TrueF2(values []uint64) float64 {
	freq := make(map[uint64]int64, len(values))
	for _, v := range values {
		freq[v]++
	}
	var f2 float64
	for _, f := range freq {
		f2 += float64(f) * float64(f)
	}
	return f2
}

// --- tree protocol ---

// Result reports an F₂ protocol run.
type Result struct {
	// Estimate is the root's F₂ estimate.
	Estimate float64
	// Comm is the communication accrued.
	Comm netsim.Delta
}

type combiner struct {
	rows, cols int
	seed       uint64
}

var _ spantree.Combiner = combiner{}

func (c combiner) Local(n *netsim.Node) any {
	s := New(c.rows, c.cols, c.seed)
	for _, it := range n.Items {
		if it.Active {
			s.Add(it.Cur)
		}
	}
	return s
}

func (c combiner) Merge(acc, child any) any {
	a := acc.(*Sketch)
	a.Merge(child.(*Sketch))
	return a
}

func (c combiner) Encode(p any) wire.Payload {
	s := p.(*Sketch)
	w := bitio.NewWriter(s.EncodedBits())
	s.AppendTo(w)
	return wire.FromWriter(w)
}

func (c combiner) Decode(pl wire.Payload) (any, error) {
	return DecodeInto(pl.Reader(), c.rows, c.cols, c.seed)
}

// F2Protocol estimates the second frequency moment of the active items by
// a single sketch convergecast; per-node cost is Θ(rows·cols·32) bits,
// independent of N.
func F2Protocol(ops spantree.Ops, rows, cols int, seed uint64) (Result, error) {
	nw := ops.Network()
	before := nw.Meter.Snapshot()
	out, err := ops.Convergecast(combiner{rows: rows, cols: cols, seed: seed})
	if err != nil {
		return Result{}, fmt.Errorf("ams: convergecast: %w", err)
	}
	return Result{
		Estimate: out.(*Sketch).EstimateF2(),
		Comm:     nw.Meter.Since(before),
	}, nil
}
