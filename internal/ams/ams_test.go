package ams

import (
	"math"
	"math/rand/v2"
	"testing"

	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/workload"
)

func TestTrueF2(t *testing.T) {
	// {1,1,1,2,2,3}: f = (3,2,1) → F2 = 9+4+1 = 14.
	if got := TrueF2([]uint64{1, 1, 1, 2, 2, 3}); got != 14 {
		t.Errorf("TrueF2 = %g, want 14", got)
	}
	if got := TrueF2(nil); got != 0 {
		t.Errorf("TrueF2(nil) = %g", got)
	}
}

func TestEstimateAccuracy(t *testing.T) {
	rng := rand.New(rand.NewPCG(1, 0))
	values := make([]uint64, 20_000)
	for i := range values {
		values[i] = rng.Uint64N(500) // heavy repetition: F2 ≫ N
	}
	truth := TrueF2(values)
	var errSum float64
	const trials = 10
	for trial := 0; trial < trials; trial++ {
		s := New(5, 64, uint64(trial)+1)
		for _, v := range values {
			s.Add(v)
		}
		errSum += math.Abs(s.EstimateF2()-truth) / truth
	}
	// Relative std dev ≈ √(2/64) ≈ 0.18 per row-mean; median-of-5 tightens.
	if mean := errSum / trials; mean > 0.25 {
		t.Errorf("mean relative error %.3f too large", mean)
	}
}

func TestSkewSensitivity(t *testing.T) {
	// F2 distinguishes flat from skewed multisets of equal size.
	flat := make([]uint64, 4096)
	for i := range flat {
		flat[i] = uint64(i)
	}
	skewed := make([]uint64, 4096)
	for i := range skewed {
		skewed[i] = uint64(i % 4)
	}
	s1 := New(5, 64, 9)
	s2 := New(5, 64, 9)
	for i := range flat {
		s1.Add(flat[i])
		s2.Add(skewed[i])
	}
	if !(s2.EstimateF2() > 10*s1.EstimateF2()) {
		t.Errorf("skewed F2 %.0f not ≫ flat F2 %.0f", s2.EstimateF2(), s1.EstimateF2())
	}
}

func TestMergeEqualsBulk(t *testing.T) {
	rng := rand.New(rand.NewPCG(2, 0))
	whole := New(3, 16, 7)
	a := New(3, 16, 7)
	b := New(3, 16, 7)
	for i := 0; i < 2000; i++ {
		v := rng.Uint64N(100)
		whole.Add(v)
		if i%2 == 0 {
			a.Add(v)
		} else {
			b.Add(v)
		}
	}
	a.Merge(b)
	for i := range whole.counters {
		if a.counters[i] != whole.counters[i] {
			t.Fatalf("counter %d: merged %d != bulk %d", i, a.counters[i], whole.counters[i])
		}
	}
}

func TestMergeIncompatiblePanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("incompatible merge should panic")
		}
	}()
	New(2, 8, 1).Merge(New(2, 8, 2))
}

func TestZigzagRoundTrip(t *testing.T) {
	for _, v := range []int64{0, 1, -1, 12345, -12345, 1 << 30, -(1 << 30)} {
		if got := unzigzag(zigzag(v)); got != v {
			t.Errorf("zigzag round trip: %d -> %d", v, got)
		}
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	s := New(2, 8, 3)
	for i := uint64(0); i < 500; i++ {
		s.Add(i % 17)
	}
	c := combiner{rows: 2, cols: 8, seed: 3}
	got, err := c.Decode(c.Encode(s))
	if err != nil {
		t.Fatal(err)
	}
	gs := got.(*Sketch)
	for i := range s.counters {
		if gs.counters[i] != s.counters[i] {
			t.Fatalf("counter %d: %d -> %d", i, s.counters[i], gs.counters[i])
		}
	}
}

func TestF2Protocol(t *testing.T) {
	g := topology.Grid(16, 16)
	values := workload.Generate(workload.FewDistinct, g.N(), 1<<12, 5)
	truth := TrueF2(values)
	nw := netsim.New(g, values, 1<<12)
	res, err := F2Protocol(spantree.NewFast(nw), 5, 64, 11)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.Estimate-truth)/truth > 0.4 {
		t.Errorf("protocol F2 %.0f vs truth %.0f", res.Estimate, truth)
	}
	if res.Comm.TotalBits == 0 {
		t.Error("no communication charged")
	}
}

func TestProtocolCostFlatInN(t *testing.T) {
	cost := func(n int) int64 {
		g := topology.Line(n)
		values := workload.Generate(workload.Uniform, n, 1<<12, 3)
		nw := netsim.New(g, values, 1<<12)
		res, err := F2Protocol(spantree.NewFast(nw), 3, 16, 1)
		if err != nil {
			t.Fatal(err)
		}
		return res.Comm.MaxPerNode
	}
	if c1, c2 := cost(128), cost(1024); c1 != c2 {
		t.Errorf("fixed-size sketch cost changed with N: %d vs %d", c1, c2)
	}
}
