module sensoragg

go 1.22
