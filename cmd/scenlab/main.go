// Command scenlab runs declarative fault scenarios through the real
// query engine and gates the results.
//
// A scenario is a YAML spec (see scenarios/*.yaml): a deployment
// (topology, size, workload), a fault plan, a three-phase epoch schedule
// (warmup → inject → recovery), a query mix, a fixed seed, and release
// gates. scenlab executes each scenario N times (reruns), emits
// per-sample JSONL plus a provenance manifest and a markdown report, and
// exits nonzero when any declared gate is breached.
//
//	scenlab -suite scenarios/ -reruns 3 -out scenlab-out/
//	scenlab -scenario scenarios/crash-storm.yaml
//
// Everything in samples.jsonl is a pure function of (spec, seed):
// running the same suite twice produces byte-identical JSONL. Exit
// codes: 0 all gates pass, 1 gate breach or scenario error, 2 usage.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"

	"sensoragg/internal/scenario"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(argv []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("scenlab", flag.ContinueOnError)
	fs.SetOutput(stderr)
	var (
		suiteDir = fs.String("suite", "", "directory of scenario YAML files (sorted, all run)")
		scenFile = fs.String("scenario", "", "single scenario YAML file")
		reruns   = fs.Int("reruns", 0, "override every scenario's rerun count (0 = per-scenario)")
		outDir   = fs.String("out", "", "artifact directory for samples.jsonl, summary.json, provenance.json, report.md")
		workers  = fs.Int("workers", 0, "engine workers (0 = 1, the deterministic default)")
		quiet    = fs.Bool("q", false, "suppress per-scenario progress lines")
	)
	if err := fs.Parse(argv); err != nil {
		return 2
	}
	if (*suiteDir == "") == (*scenFile == "") {
		fmt.Fprintln(stderr, "scenlab: exactly one of -suite or -scenario is required")
		fs.Usage()
		return 2
	}

	var scenarios []*scenario.Scenario
	var err error
	if *suiteDir != "" {
		scenarios, err = scenario.LoadSuite(*suiteDir)
	} else {
		var s *scenario.Scenario
		s, err = scenario.Load(*scenFile)
		scenarios = []*scenario.Scenario{s}
	}
	if err != nil {
		fmt.Fprintf(stderr, "scenlab: %v\n", err)
		return 2
	}

	runner := scenario.NewRunner(scenario.Options{Reruns: *reruns, Workers: *workers})
	var results []*scenario.RunResult
	var findings []scenario.GateFinding
	files := make([]string, 0, len(scenarios))
	for _, s := range scenarios {
		files = append(files, s.File)
		if !*quiet {
			fmt.Fprintf(stdout, "scenlab: %s (%s n=%d, %d reruns × %d epochs)...\n",
				s.Name, s.Deployment.Topology, s.Deployment.N, runner.Reruns(s), s.Phases.Total())
		}
		res, err := runner.Run(context.Background(), s)
		if err != nil {
			fmt.Fprintf(stderr, "scenlab: %s: %v\n", s.Name, err)
			return 1
		}
		results = append(results, res)
		fs := scenario.Evaluate(&res.Summary)
		findings = append(findings, fs...)
		if !*quiet {
			for _, f := range fs {
				verdict := "pass"
				if !f.Pass {
					verdict = "FAIL"
				}
				fmt.Fprintf(stdout, "  gate %-18s %-4s  %s\n", f.Gate, verdict, f.Detail)
			}
		}
	}

	if *outDir != "" {
		prov := scenario.NewProvenance("scenlab", scenario.Options{Reruns: *reruns, Workers: *workers}, files)
		if err := scenario.WriteArtifacts(*outDir, results, findings, prov); err != nil {
			fmt.Fprintf(stderr, "scenlab: writing artifacts: %v\n", err)
			return 1
		}
		if !*quiet {
			fmt.Fprintf(stdout, "scenlab: artifacts written to %s\n", *outDir)
		}
	}

	pass := scenario.AllPass(findings)
	failed := 0
	for _, f := range findings {
		if !f.Pass {
			failed++
		}
	}
	if pass {
		fmt.Fprintf(stdout, "scenlab: PASS — %d scenario(s), %d gate finding(s)\n", len(results), len(findings))
		return 0
	}
	fmt.Fprintf(stdout, "scenlab: FAIL — %d of %d gate finding(s) breached\n", failed, len(findings))
	return 1
}
