package main

import (
	"bytes"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// tinyScenario runs in well under a second: 16 nodes, 3 epochs, 2 reruns.
const tinyScenario = `
name: tiny
seed: 5
reruns: 2
deployment:
  topology: grid
  n: 16
  workload: uniform
phases:
  warmup: 1
  inject: 1
  recovery: 1
faults:
  crash: 0.1
queries:
  - median
gates:
  converge: true
  min_samples: 6
`

func writeTiny(t *testing.T, body string) string {
	t.Helper()
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "tiny.yaml"), []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return dir
}

func TestRunSuitePassWithArtifacts(t *testing.T) {
	dir := writeTiny(t, tinyScenario)
	out := filepath.Join(t.TempDir(), "artifacts")
	var stdout, stderr bytes.Buffer
	code := run([]string{"-suite", dir, "-out", out}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "PASS") {
		t.Fatalf("stdout missing PASS: %s", stdout.String())
	}
	for _, f := range []string{"samples.jsonl", "summary.json", "provenance.json", "report.md"} {
		if _, err := os.Stat(filepath.Join(out, f)); err != nil {
			t.Errorf("artifact %s: %v", f, err)
		}
	}
}

func TestRunGateBreachExits1(t *testing.T) {
	// An impossible sample floor breaches the min-samples gate.
	dir := writeTiny(t, strings.Replace(tinyScenario, "min_samples: 6", "min_samples: 1000", 1))
	var stdout, stderr bytes.Buffer
	if code := run([]string{"-suite", dir, "-q"}, &stdout, &stderr); code != 1 {
		t.Fatalf("exit %d, want 1; stdout: %s", code, stdout.String())
	}
	if !strings.Contains(stdout.String(), "FAIL") {
		t.Fatalf("stdout missing FAIL: %s", stdout.String())
	}
}

func TestRunSingleScenarioAndRerunOverride(t *testing.T) {
	dir := writeTiny(t, tinyScenario)
	var stdout, stderr bytes.Buffer
	code := run([]string{"-scenario", filepath.Join(dir, "tiny.yaml"), "-reruns", "3"}, &stdout, &stderr)
	if code != 0 {
		t.Fatalf("exit %d, stderr: %s", code, stderr.String())
	}
	if !strings.Contains(stdout.String(), "3 reruns") {
		t.Fatalf("override not applied: %s", stdout.String())
	}
}

func TestRunUsageErrors(t *testing.T) {
	var stdout, stderr bytes.Buffer
	if code := run(nil, &stdout, &stderr); code != 2 {
		t.Fatalf("no flags: exit %d, want 2", code)
	}
	if code := run([]string{"-suite", "x", "-scenario", "y"}, &stdout, &stderr); code != 2 {
		t.Fatalf("both flags: exit %d, want 2", code)
	}
	if code := run([]string{"-suite", "/does/not/exist"}, &stdout, &stderr); code != 2 {
		t.Fatalf("missing dir: exit %d, want 2", code)
	}
}
