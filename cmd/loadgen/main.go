// Command loadgen drives the continuous-query serving layer the way a
// dashboard fleet would: K subscribers register the same standing
// statement, the deployment drifts epoch over epoch, and every epoch
// answers all K on one fused probe plane with delta-narrowing seeding each
// k-ary search from the answer history. It reports p50/p95 per-subscriber
// epoch latency, the per-epoch bits/node (the paper measure) next to one
// solo query's plane, the delta-narrowing hit rate, and per-subscriber
// shed-delivery counts.
//
//	$ go run ./cmd/loadgen -subscribers 64 -epochs 10
//	$ go run ./cmd/loadgen -subscribers 64 -epochs 10 -json
//	$ go run ./cmd/loadgen -obs-addr 127.0.0.1:9137 -linger 30s -json
//
// Observability is always on for the run: the JSON report embeds a final
// metrics registry snapshot, the tail of the sweep/batch/epoch trace, and
// git-commit provenance. With -obs-addr the live introspection endpoint
// (/metrics, /healthz, /debug/trace, /debug/pprof) serves while the run
// executes — and keeps serving for -linger afterwards so CI can scrape
// the finished run's counters.
//
// Exit status is non-zero if any delivery failed, went missing, or was
// shed to a slow subscriber, so CI can use a short run as a smoke test of
// the serving stack.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"runtime"
	"runtime/debug"
	"sort"
	"strings"
	"sync"
	"time"

	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/obs"
	"sensoragg/internal/obs/obshttp"
	"sensoragg/internal/serve"
	"sensoragg/internal/topology"
)

func main() {
	topo := flag.String("topology", "grid", "line|ring|star|grid|torus|complete|btree|rgg")
	n := flag.Int("n", 4096, "number of nodes")
	wl := flag.String("workload", "uniform", "input distribution")
	seed := flag.Uint64("seed", 1, "random seed")
	subscribers := flag.Int("subscribers", 64, "standing subscriptions")
	epochs := flag.Int("epochs", 10, "epochs to advance")
	window := flag.Duration("window", serve.DefaultFuseWindow, "group-commit fusion window")
	drift := flag.Uint64("drift", 200, "per-node ±step random walk per epoch (0 = static values)")
	byz := flag.Float64("byz", 0, "fault plan: Byzantine (lying) node probability (root exempt)")
	byzMode := flag.String("byzmode", "", "Byzantine lie discipline: corrupt|equivocate|collude (default corrupt)")
	robust := flag.Bool("robust", false, "serve every subscription on the Byzantine-robust tier (audits, quarantine, integrity bounds)")
	retryBudget := flag.Int("retry-budget", 0, "mid-sweep retry budget: detect → re-heal → resume attempts before an answer degrades to best-known bounds")
	statement := flag.String("statement", "SELECT median(value)", "the standing statement")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	buffer := flag.Int("buffer", 0, "subscription channel depth (0 = deep enough for the whole run; small values exercise shed-oldest delivery)")
	obsAddr := flag.String("obs-addr", "", "serve the live introspection endpoint (/metrics, /healthz, /debug/trace, /debug/pprof) on this address")
	linger := flag.Duration("linger", 0, "keep the -obs-addr endpoint up this long after the run, so the final counters can be scraped")
	flag.Parse()

	// The whole run records into a fresh sink; the report embeds its
	// final state.
	sink := obs.Enable()
	defer obs.Disable()
	var obsSrv *obshttp.Server
	if *obsAddr != "" {
		var err error
		obsSrv, err = obshttp.ListenAndServe(*obsAddr, sink, nil)
		if err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
		defer obsSrv.Close()
		fmt.Fprintf(os.Stderr, "loadgen: obs endpoint on http://%s\n", obsSrv.Addr)
	}

	spec := engine.Spec{Topology: *topo, N: *n, Workload: *wl, Seed: *seed,
		Faults: faults.Spec{Byz: *byz, ByzMode: *byzMode},
		Retry:  engine.Retry{Budget: *retryBudget}}
	rep, err := run(spec, *subscribers, *epochs, *window, *drift, *statement, *buffer, *robust)
	if err != nil {
		fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
		os.Exit(1)
	}
	rep.Obs = snapshotObs(sink)

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fmt.Fprintf(os.Stderr, "loadgen: %v\n", err)
			os.Exit(1)
		}
	} else {
		rep.print()
	}

	if obsSrv != nil && *linger > 0 {
		fmt.Fprintf(os.Stderr, "loadgen: lingering %s on http://%s for scrapes\n", *linger, obsSrv.Addr)
		time.Sleep(*linger)
	}
	if rep.Failed > 0 || rep.Missing > 0 || rep.SubsDroppedTotal > 0 {
		os.Exit(1)
	}
}

// report is loadgen's stable JSON output.
type report struct {
	Spec        engine.Spec `json:"spec"`
	Statement   string      `json:"statement"`
	Subscribers int         `json:"subscribers"`
	Epochs      int         `json:"epochs"`
	Drift       uint64      `json:"drift"`
	// RetryBudget is the engine's mid-sweep retry budget the run served
	// under (-retry-budget).
	RetryBudget int `json:"retry_budget"`

	// Deliveries counts results received on subscription channels; Missing
	// is how many of the expected subscribers×epochs never arrived, Failed
	// how many arrived as errors.
	Deliveries int `json:"deliveries"`
	Failed     int `json:"failed"`
	Missing    int `json:"missing"`

	// DroppedPerSubscriber is each subscription's Dropped() count in
	// subscription order; SubsDroppedTotal is their sum. Non-zero means
	// the epoch stream shed deliveries to a slow subscriber, and loadgen
	// exits non-zero.
	DroppedPerSubscriber []int64 `json:"dropped_per_subscriber,omitempty"`
	SubsDroppedTotal     int64   `json:"subs_dropped_total"`

	// P50LatencyNS/P95LatencyNS are per-subscriber epoch latencies: epoch
	// advance start to the subscriber receiving its result.
	P50LatencyNS int64 `json:"p50_latency_ns"`
	P95LatencyNS int64 `json:"p95_latency_ns"`

	// EpochBitsPerNode is the mean per-epoch bits/node serving ALL
	// subscribers (one fused plane); SoloBitsPerNode is one from-scratch
	// solo query's plane for comparison.
	EpochBitsPerNode float64 `json:"epoch_bits_per_node"`
	SoloBitsPerNode  int64   `json:"solo_bits_per_node"`

	// SeedHitRate is the fraction of steady-state deliveries (epoch ≥ 3,
	// when a move estimate exists) whose seeded search contained the
	// answer.
	SeedHitRate float64 `json:"seed_hit_rate"`

	// Robust marks a run served on the Byzantine-robust tier. The totals
	// aggregate over all deliveries: QuarantinedTotal counts convicted
	// liars (each epoch re-runs localization on its forked fault plan),
	// and MaxIntegrityBound is the worst per-answer bound — 0 means every
	// delivered answer was certified exact over the honest survivors.
	Robust            bool   `json:"robust,omitempty"`
	QuarantinedTotal  int64  `json:"quarantined_total,omitempty"`
	SuspectedTotal    int64  `json:"suspected_total,omitempty"`
	MaxIntegrityBound uint64 `json:"max_integrity_bound,omitempty"`

	// Obs embeds the run's final observability state: the metrics
	// registry snapshot, the trace tail, and provenance.
	Obs *obsReport `json:"obs,omitempty"`
}

// obsReport is the embedded observability snapshot.
type obsReport struct {
	Metrics    obs.Snapshot `json:"metrics"`
	TraceTail  []obs.Event  `json:"trace_tail"`
	Provenance provenance   `json:"provenance"`
}

type provenance struct {
	GitCommit string `json:"git_commit"`
	GoVersion string `json:"go_version"`
	Timestamp string `json:"timestamp"`
}

// traceTailLen bounds the trace excerpt embedded in the report (the full
// ring is available on /debug/trace while the endpoint lingers).
const traceTailLen = 64

func snapshotObs(sink *obs.Sink) *obsReport {
	return &obsReport{
		Metrics:   sink.Metrics.Snapshot(),
		TraceTail: sink.Tracer.Last(traceTailLen),
		Provenance: provenance{
			GitCommit: gitCommit(),
			GoVersion: runtime.Version(),
			Timestamp: time.Now().UTC().Format(time.RFC3339),
		},
	}
}

// gitCommit resolves the build's VCS revision: the stamped build info
// when present (binaries built from a clean checkout), the working
// tree's HEAD as a fallback (`go run` does not stamp VCS), else
// "unknown".
func gitCommit() string {
	if bi, ok := debug.ReadBuildInfo(); ok {
		for _, s := range bi.Settings {
			if s.Key == "vcs.revision" && s.Value != "" {
				return s.Value
			}
		}
	}
	if out, err := exec.Command("git", "rev-parse", "HEAD").Output(); err == nil {
		if rev := strings.TrimSpace(string(out)); rev != "" {
			return rev
		}
	}
	return "unknown"
}

func (r *report) print() {
	spec := r.Spec
	fmt.Printf("loadgen: %s N=%d X=%d workload %s — %d subscriber(s) × %d epoch(s), drift ±%d\n",
		spec.Topology, spec.N, spec.MaxX, spec.Workload, r.Subscribers, r.Epochs, r.Drift)
	fmt.Printf("deliveries: %d (%d failed, %d missing, %d dropped)\n", r.Deliveries, r.Failed, r.Missing, r.SubsDroppedTotal)
	fmt.Printf("per-subscriber epoch latency: p50 %s, p95 %s\n",
		time.Duration(r.P50LatencyNS), time.Duration(r.P95LatencyNS))
	ratio := 0.0
	if r.SoloBitsPerNode > 0 {
		ratio = r.EpochBitsPerNode / float64(r.SoloBitsPerNode)
	}
	fmt.Printf("epoch cost: %.0f bits/node serving all %d — one solo query costs %d bits/node (%.2fx)\n",
		r.EpochBitsPerNode, r.Subscribers, r.SoloBitsPerNode, ratio)
	fmt.Printf("delta-narrowing: %.0f%% of steady-state epochs answered inside the seeded window\n",
		100*r.SeedHitRate)
	if r.Robust {
		fmt.Printf("robust tier: %d quarantined, %d suspected across deliveries, worst integrity bound ±%d items\n",
			r.QuarantinedTotal, r.SuspectedTotal, r.MaxIntegrityBound)
	}
	if r.Obs != nil {
		fmt.Printf("obs: %d sweeps, %d broadcasts, %d epochs recorded (commit %s)\n",
			r.Obs.Metrics.Counters["sweeps_total"], r.Obs.Metrics.Counters["broadcasts_total"],
			r.Obs.Metrics.Counters["epochs_total"], r.Obs.Provenance.GitCommit)
	}
}

type delivery struct {
	epoch       int
	latencyNS   int64
	bits        int64
	seedHit     bool
	failed      bool
	quarantined int
	suspected   int
	bound       uint64
}

func run(spec engine.Spec, subscribers, epochs int, window time.Duration, drift uint64, statement string, buffer int, robust bool) (*report, error) {
	if subscribers < 1 || epochs < 1 {
		return nil, fmt.Errorf("need at least 1 subscriber and 1 epoch")
	}
	spec = spec.Normalize()
	eng := engine.New(engine.Options{})

	// One solo from-scratch query prices the per-query plane the serving
	// layer amortizes across the fleet.
	soloQuery, _, err := serve.QueryFor(statement)
	if err != nil {
		return nil, err
	}
	if robust && soloQuery.Kind != engine.KindStatement {
		soloQuery.Robust = true
	}
	solo := eng.Submit(context.Background(), []engine.Job{{Spec: spec, Query: soloQuery}})[0]
	if solo.Failed() {
		return nil, fmt.Errorf("solo %q: %s", statement, solo.Error)
	}

	if buffer <= 0 {
		// Deep enough that no epoch is ever shed: latency is the metric.
		// An explicit -buffer exercises the shed-oldest delivery path
		// instead, and any drop fails the run.
		buffer = epochs + 1
	}
	rng := rand.New(rand.NewSource(int64(spec.Seed)))
	svc, err := serve.New(serve.Options{
		Spec:       spec,
		Engine:     eng,
		FuseWindow: window,
		// Per-node ±drift random walk; AdvanceEpoch runs the closure from
		// one goroutine, so the shared rng is safe.
		Update: func(e int, node topology.NodeID, prev uint64) uint64 {
			if drift == 0 {
				return prev
			}
			next := int64(prev) + rng.Int63n(2*int64(drift)+1) - int64(drift)
			if next < 0 {
				next = 0
			}
			return uint64(next)
		},
		Buffer: buffer,
		Robust: robust,
	})
	if err != nil {
		return nil, err
	}
	defer svc.Close()

	// starts[e] is written before epoch e advances; the result delivery
	// inside AdvanceEpoch happens-after it, so consumers read it safely.
	starts := make([]time.Time, epochs+1)
	var wg sync.WaitGroup
	var mu sync.Mutex
	var deliveries []delivery

	subs := make([]*serve.Subscription, 0, subscribers)
	for i := 0; i < subscribers; i++ {
		sub, err := svc.Subscribe(context.Background(), statement)
		if err != nil {
			return nil, err
		}
		subs = append(subs, sub)
		wg.Add(1)
		go func() {
			defer wg.Done()
			for r := range sub.Results() {
				d := delivery{
					epoch:       r.Epoch,
					latencyNS:   time.Since(starts[r.Epoch]).Nanoseconds(),
					bits:        r.BitsPerNode,
					seedHit:     r.SeedHit,
					failed:      r.Failed(),
					quarantined: r.Quarantined,
					suspected:   r.Suspected,
					bound:       r.IntegrityBound,
				}
				mu.Lock()
				deliveries = append(deliveries, d)
				mu.Unlock()
			}
		}()
	}

	for e := 1; e <= epochs; e++ {
		starts[e] = time.Now()
		svc.AdvanceEpoch(context.Background())
	}
	svc.Close() // closes the subscription channels, ending the consumers
	wg.Wait()

	rep := &report{
		Spec:            spec,
		Statement:       statement,
		Subscribers:     subscribers,
		Epochs:          epochs,
		Drift:           drift,
		RetryBudget:     spec.Retry.Budget,
		Deliveries:      len(deliveries),
		SoloBitsPerNode: solo.BitsPerNode,
		Robust:          robust,
	}
	for _, sub := range subs {
		d := sub.Dropped()
		rep.DroppedPerSubscriber = append(rep.DroppedPerSubscriber, d)
		rep.SubsDroppedTotal += d
	}
	// A shed delivery is both dropped and missing; a consumer that never
	// got the chance to receive it still expected it.
	rep.Missing = subscribers*epochs - len(deliveries)
	latencies := make([]int64, 0, len(deliveries))
	epochBits := make(map[int]int64, epochs)
	steady, hits := 0, 0
	for _, d := range deliveries {
		if d.failed {
			rep.Failed++
			continue
		}
		latencies = append(latencies, d.latencyNS)
		epochBits[d.epoch] = d.bits // fused: every delivery prices the one shared plane
		rep.QuarantinedTotal += int64(d.quarantined)
		rep.SuspectedTotal += int64(d.suspected)
		if d.bound > rep.MaxIntegrityBound {
			rep.MaxIntegrityBound = d.bound
		}
		if d.epoch >= 3 {
			steady++
			if d.seedHit {
				hits++
			}
		}
	}
	if len(latencies) > 0 {
		sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
		rep.P50LatencyNS = latencies[len(latencies)/2]
		rep.P95LatencyNS = latencies[len(latencies)*95/100]
	}
	var bits int64
	for _, b := range epochBits {
		bits += b
	}
	if len(epochBits) > 0 {
		rep.EpochBitsPerNode = float64(bits) / float64(len(epochBits))
	}
	if steady > 0 {
		rep.SeedHitRate = float64(hits) / float64(steady)
	}
	return rep, nil
}
