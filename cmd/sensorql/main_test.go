package main

import (
	"context"
	"strings"
	"testing"

	"sensoragg/internal/core"
	"sensoragg/internal/energy"
	"sensoragg/internal/engine"
	"sensoragg/internal/obs"
	"sensoragg/internal/query"
)

func testConsole(t *testing.T) *console {
	t.Helper()
	c := newConsole()
	if err := c.use(engine.Spec{Topology: "grid", N: 64, Workload: "uniform", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	t.Cleanup(c.closeService)
	return c
}

// TestSetProbeWidth covers the session knob's parsing: defaults, explicit
// widths, reset to default, and rejection of junk.
func TestSetProbeWidth(t *testing.T) {
	c := testConsole(t)
	if c.probeWidth != 0 {
		t.Fatalf("fresh console probe width %d, want 0 (engine default %d)", c.probeWidth, core.DefaultProbeWidth)
	}
	if err := c.setCommand("set probewidth 16"); err != nil || c.probeWidth != 16 {
		t.Errorf("set probewidth 16: width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("SET PROBEWIDTH 4"); err != nil || c.probeWidth != 4 {
		t.Errorf("SET PROBEWIDTH 4 (case-insensitive): width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("set probewidth default"); err != nil || c.probeWidth != 0 {
		t.Errorf("set probewidth default: width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("set"); err != nil {
		t.Errorf("bare set should print, not error: %v", err)
	}
	for _, bad := range []string{"set probewidth 0", "set probewidth -3", "set probewidth x", "set probewidth 2000", "set frobnitz 3"} {
		if err := c.setCommand(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestSessionWidthFlowsIntoStatements: the session default reaches the
// selection path (visible in the k-ary detail string), and an explicit
// USING probewidth wins over it.
func TestSessionWidthFlowsIntoStatements(t *testing.T) {
	c := testConsole(t)

	res, err := c.exec("SELECT median(value)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 8") {
		t.Errorf("engine-default run detail %q, want width %d", res.Detail, core.DefaultProbeWidth)
	}

	if err := c.setCommand("set probewidth 4"); err != nil {
		t.Fatal(err)
	}
	res, err = c.exec("SELECT median(value)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 4") {
		t.Errorf("session width 4 run detail %q", res.Detail)
	}

	res, err = c.exec("SELECT median(value) USING probewidth=2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 2") {
		t.Errorf("USING probewidth=2 run detail %q", res.Detail)
	}

	// Multi-quantile rides the same knob and reports every value.
	res, err = c.exec("SELECT quantiles(value, 0.25, 0.5, 0.9)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Errorf("quantiles returned %d values", len(res.Values))
	}
}

// TestSetFuse covers the SET FUSE knob and the fused statement batch: the
// semicolon line must answer every statement exactly as solo execution
// does, for one shared plane's cost.
func TestSetFuse(t *testing.T) {
	c := testConsole(t)
	if c.fuse {
		t.Fatal("fresh console has fuse on")
	}
	if err := c.setCommand("set fuse on"); err != nil || !c.fuse {
		t.Fatalf("set fuse on: fuse=%v err=%v", c.fuse, err)
	}
	if err := c.setCommand("SET FUSE OFF"); err != nil || c.fuse {
		t.Fatalf("SET FUSE OFF: fuse=%v err=%v", c.fuse, err)
	}
	if err := c.setCommand("set fuse maybe"); err == nil {
		t.Error("set fuse maybe accepted")
	}
}

// TestFusedQueryMapping: statements map onto fusion-batch jobs; WHERE
// clauses and non-exact aggregates stay out, and a single quantile keeps
// the console's protocol-counted φ resolution (KindQuantiles).
func TestFusedQueryMapping(t *testing.T) {
	fusable := []string{
		"SELECT median(value)",
		"SELECT quantile(value, 0.9)",
		"SELECT quantiles(value, 0.25, 0.5)",
		"SELECT count(value)",
		"SELECT sum(value)",
		"SELECT min(value)",
		"SELECT max(value)",
		"SELECT avg(value)",
		"SELECT median(value) USING probewidth=4",
	}
	for _, s := range fusable {
		q, err := query.Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if _, ok := fusedQuery(q); !ok {
			t.Errorf("%q should be fusable", s)
		}
	}
	q, err := query.Parse("SELECT quantile(value, 0.9)")
	if err != nil {
		t.Fatal(err)
	}
	if eq, _ := fusedQuery(q); eq.Kind != engine.KindQuantiles || len(eq.Phis) != 1 {
		t.Errorf("single quantile mapped to %s/%v, want KindQuantiles with one φ", eq.Kind, eq.Phis)
	}
	unfusable := []string{
		"SELECT median(value) WHERE value < 100",
		"SELECT apxmedian(value)",
		"SELECT distinct(value)",
		"SELECT apxcount(value)",
	}
	for _, s := range unfusable {
		q, err := query.Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if _, ok := fusedQuery(q); ok {
			t.Errorf("%q should not be fusable", s)
		}
	}
}

// TestExecFusedMatchesSolo: the fused batch's answers equal the statements
// run one at a time, and the whole batch costs less than the solo total.
func TestExecFusedMatchesSolo(t *testing.T) {
	stmts := []string{
		"SELECT median(value)",
		"SELECT quantile(value, 0.9)",
		"SELECT count(value)",
		"SELECT sum(value)",
	}
	solo := testConsole(t)
	var soloVals []float64
	var soloBits, soloMessages int64
	for _, s := range stmts {
		res, err := solo.exec(s)
		if err != nil {
			t.Fatal(err)
		}
		soloVals = append(soloVals, res.Value)
		soloBits += res.Comm.TotalBits
		soloMessages += res.Comm.Messages
	}

	c := testConsole(t)
	jobs := make([]engine.Job, len(stmts))
	for i, s := range stmts {
		q, err := query.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		eq, ok := fusedQuery(q)
		if !ok {
			t.Fatalf("%q not fusable", s)
		}
		jobs[i] = engine.Job{Spec: c.spec, Query: eq}
	}
	res := c.eng.Submit(context.Background(), jobs, engine.WithFusion())
	for i, r := range res {
		if r.Failed() {
			t.Fatalf("%s: %s", stmts[i], r.Error)
		}
		if !r.Fused {
			t.Errorf("%s did not fuse", stmts[i])
		}
		if r.Value != soloVals[i] {
			t.Errorf("%s: fused %g != solo %g", stmts[i], r.Value, soloVals[i])
		}
	}
	// Rounds are where fusion wins outright (4 statements, one plane);
	// total bits also drop, though less than the round ratio on a tiny
	// 64-node deployment because the merged chain packs more probes into
	// each surviving sweep.
	if 2*res[0].Messages >= soloMessages {
		t.Errorf("fused batch used %d messages vs %d solo total — want <half", res[0].Messages, soloMessages)
	}
	if res[0].TotalBits >= soloBits {
		t.Errorf("fused batch cost %d bits vs %d solo total — want strictly less", res[0].TotalBits, soloBits)
	}
}

// TestServeCommands drives the serving layer through the console commands:
// subscribe, advance epochs under drift, unsubscribe, and the lifecycle on
// a deployment switch.
func TestServeCommands(t *testing.T) {
	c := testConsole(t)
	model := energy.MoteDefaults()

	if err := c.subscribeCommand("subscribe SELECT median(value)"); err != nil {
		t.Fatal(err)
	}
	if err := c.subscribeCommand("subscribe SELECT count(value)"); err != nil {
		t.Fatal(err)
	}
	if len(c.subs) != 2 {
		t.Fatalf("%d subscriptions, want 2", len(c.subs))
	}
	if err := c.subscribeCommand("subscribe SELECT nope(value)"); err == nil {
		t.Error("bad statement subscribed")
	}
	if err := c.subscribeCommand("subscribe"); err == nil {
		t.Error("empty subscribe accepted")
	}

	if err := c.setCommand("set drift 50"); err != nil || c.drift != 50 {
		t.Fatalf("set drift 50: drift=%d err=%v", c.drift, err)
	}
	if err := c.epochCommand("epoch 4", model); err != nil {
		t.Fatal(err)
	}
	if got := c.svc.Epoch(); got != 4 {
		t.Errorf("after epoch 4: service at epoch %d", got)
	}
	// The command prints from AdvanceEpoch's return and drains the
	// channels, so no stale epochs are queued.
	for id, sub := range c.subs {
		select {
		case r := <-sub.Results():
			t.Errorf("sub [%d] still queues epoch %d after the drain", id, r.Epoch)
		default:
		}
	}

	for _, bad := range []string{"epoch 0", "epoch -2", "epoch x", "epoch 1 2"} {
		if err := c.epochCommand(bad, model); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}

	if err := c.unsubscribeCommand("unsubscribe 1"); err != nil {
		t.Fatal(err)
	}
	if err := c.unsubscribeCommand("unsubscribe 1"); err == nil {
		t.Error("double unsubscribe accepted")
	}
	if err := c.unsubscribeCommand("unsubscribe x"); err == nil {
		t.Error("junk id accepted")
	}
	if err := c.epochCommand("epoch", model); err != nil {
		t.Fatal(err)
	}

	// Switching deployments closes the service; the next subscribe builds
	// a fresh one over the new network, back at epoch 0.
	if err := c.netCommand("net grid 100"); err != nil {
		t.Fatal(err)
	}
	if c.svc != nil || c.subs != nil {
		t.Fatal("deployment switch left the service running")
	}
	if err := c.subscribeCommand("subscribe SELECT max(value)"); err != nil {
		t.Fatal(err)
	}
	if err := c.epochCommand("epoch", model); err != nil {
		t.Fatal(err)
	}
	if got := c.svc.Epoch(); got != 1 {
		t.Errorf("fresh service at epoch %d, want 1", got)
	}
}

// TestSetDrift covers the drift knob's parsing.
func TestSetDrift(t *testing.T) {
	c := testConsole(t)
	if c.drift != 0 {
		t.Fatalf("fresh console drift %d, want 0", c.drift)
	}
	if err := c.setCommand("SET DRIFT 120"); err != nil || c.drift != 120 {
		t.Errorf("SET DRIFT 120: drift=%d err=%v", c.drift, err)
	}
	if err := c.setCommand("set drift off"); err != nil || c.drift != 0 {
		t.Errorf("set drift off: drift=%d err=%v", c.drift, err)
	}
	for _, bad := range []string{"set drift 0", "set drift -4", "set drift fast"} {
		if err := c.setCommand(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestSetObsAndStats covers the observability knob end to end through the
// console: toggling records real events, `stats` sees them, and toggling
// on twice keeps the accumulated sink.
func TestSetObsAndStats(t *testing.T) {
	obs.Disable()
	t.Cleanup(obs.Disable)
	c := testConsole(t)

	if err := c.setCommand("set obs on"); err != nil {
		t.Fatal(err)
	}
	sk := obs.Active()
	if sk == nil {
		t.Fatal("set obs on left no active sink")
	}
	if _, err := c.exec("SELECT median(value)"); err != nil {
		t.Fatal(err)
	}
	if sk.Sweeps.Value() == 0 || sk.Broadcasts.Value() == 0 {
		t.Errorf("a median left no sweep/broadcast counts: sweeps=%d broadcasts=%d",
			sk.Sweeps.Value(), sk.Broadcasts.Value())
	}
	if sk.Tracer.Len() == 0 {
		t.Error("a median left no trace events")
	}

	// Idempotent re-enable keeps the sink (and its accumulated stats).
	before := sk.Sweeps.Value()
	if err := c.setCommand("SET OBS ON"); err != nil {
		t.Fatal(err)
	}
	if obs.Active() != sk {
		t.Error("redundant `set obs on` replaced the sink")
	}
	if obs.Active().Sweeps.Value() != before {
		t.Error("redundant `set obs on` reset the counters")
	}

	c.statsCommand() // prints a snapshot; must not panic with obs on

	if err := c.setCommand("set obs off"); err != nil {
		t.Fatal(err)
	}
	if obs.Active() != nil {
		t.Fatal("set obs off left a sink active")
	}
	c.statsCommand() // prints the "off" hint; must not panic with obs off

	if err := c.setCommand("set obs maybe"); err == nil {
		t.Error("`set obs maybe` accepted")
	}
}

// TestFaultsByzParsing: the faults command accepts byz rates and
// byzmode disciplines, round-trips them into the deployment spec, and
// rejects junk modes and byzmode-without-byz.
func TestFaultsByzParsing(t *testing.T) {
	c := testConsole(t)
	if err := c.faultsCommand("faults byz=0.05 byzmode=equivocate seed=7"); err != nil {
		t.Fatal(err)
	}
	if c.spec.Faults.Byz != 0.05 || c.spec.Faults.ByzMode != "equivocate" || c.spec.Faults.Seed != 7 {
		t.Fatalf("spec faults %+v", c.spec.Faults)
	}
	if err := c.faultsCommand("faults byz=0.1 byzmode=COLLUDE"); err != nil {
		t.Fatalf("byzmode should be case-insensitive: %v", err)
	}
	if c.spec.Faults.ByzMode != "collude" {
		t.Fatalf("byzmode %q", c.spec.Faults.ByzMode)
	}
	for _, bad := range []string{
		"faults byz=2",                 // rate out of range
		"faults byz=0.1 byzmode=spoof", // unknown discipline
		"faults byzmode=corrupt",       // mode without a rate
		"faults byz=x",                 // unparsable rate
	} {
		if err := c.faultsCommand(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if err := c.faultsCommand("faults off"); err != nil || c.spec.Faults.Active() {
		t.Fatalf("faults off: %+v err=%v", c.spec.Faults, err)
	}
}

// TestSetRobustAndExec: `set robust on` answers statements on the
// Byzantine-robust tier — under an adversarial plan the robust answer
// matches the honest truth while the plain answer need not — and
// statements without a robust path are refused with guidance.
func TestSetRobustAndExec(t *testing.T) {
	c := testConsole(t)
	if err := c.setCommand("set robust on"); err != nil || !c.robust {
		t.Fatalf("set robust on: robust=%v err=%v", c.robust, err)
	}
	if err := c.faultsCommand("faults byz=0.08"); err != nil {
		t.Fatal(err)
	}
	model := energy.MoteDefaults()
	if err := c.execRobustSolo("SELECT median(value)", model); err != nil {
		t.Fatalf("robust median: %v", err)
	}
	// Same job straight through the engine: the answer must be exact
	// after localization (everything byz-flagged is quarantined).
	r := c.eng.Submit(context.Background(), []engine.Job{{
		Spec: c.spec, Query: engine.Query{Kind: engine.KindMedian, Robust: true},
	}})[0]
	if r.Failed() || !r.Robust || !r.Exact || r.IntegrityBound != 0 {
		t.Fatalf("robust result %+v", r)
	}
	if err := c.execRobustSolo("SELECT count(value) WHERE value < 10", model); err == nil ||
		!strings.Contains(err.Error(), "robust") {
		t.Fatalf("WHERE clause should be refused on the robust tier, got %v", err)
	}
	if err := c.setCommand("set robust off"); err != nil || c.robust {
		t.Fatalf("set robust off: robust=%v err=%v", c.robust, err)
	}
	if err := c.setCommand("set robust sideways"); err == nil {
		t.Fatal("bad robust value accepted")
	}
}

// TestStatsShowsByzCounters: the obs registry pre-registers the byz
// tier's instruments, so `stats` surfaces them (and a robust run under
// an adversary moves the quarantine counter).
func TestStatsShowsByzCounters(t *testing.T) {
	if obs.Active() != nil {
		t.Skip("observability already active in this process")
	}
	obs.Enable()
	defer obs.Disable()
	c := testConsole(t)
	if err := c.faultsCommand("faults byz=0.08"); err != nil {
		t.Fatal(err)
	}
	r := c.eng.Submit(context.Background(), []engine.Job{{
		Spec: c.spec, Query: engine.Query{Kind: engine.KindCount, Robust: true},
	}})[0]
	if r.Failed() {
		t.Fatal(r.Error)
	}
	snap := obs.Active().Metrics.Snapshot()
	if _, ok := snap.Counters["byz_suspected_total"]; !ok {
		t.Error("byz_suspected_total not registered")
	}
	if _, ok := snap.Gauges["integrity_bound"]; !ok {
		t.Error("integrity_bound not registered")
	}
	if r.Quarantined > 0 && snap.Counters["byz_quarantined_total"] == 0 {
		t.Errorf("quarantined %d but byz_quarantined_total is 0", r.Quarantined)
	}
}

// TestSetRetry covers the mid-sweep retry budget knob: numbers, off,
// and rejection of junk. The budget lands on the console spec's Retry,
// which every engine-routed statement inherits.
func TestSetRetry(t *testing.T) {
	c := testConsole(t)
	if c.spec.Retry.Budget != 0 {
		t.Fatalf("fresh console retry budget %d, want 0", c.spec.Retry.Budget)
	}
	if err := c.setCommand("set retry 3"); err != nil || c.spec.Retry.Budget != 3 {
		t.Errorf("set retry 3: budget=%d err=%v", c.spec.Retry.Budget, err)
	}
	if err := c.setCommand("SET RETRY OFF"); err != nil || c.spec.Retry.Budget != 0 {
		t.Errorf("SET RETRY OFF: budget=%d err=%v", c.spec.Retry.Budget, err)
	}
	for _, bad := range []string{"set retry -1", "set retry x", "set retry 1.5"} {
		if err := c.setCommand(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestFaultsMidSweepParsing: the phased fault tokens land on the Mid
// fields, tokens must agree on one boundary, and malformed tokens are
// refused with the field named.
func TestFaultsMidSweepParsing(t *testing.T) {
	c := testConsole(t)
	if err := c.faultsCommand("faults crash@sweep=3=0.1"); err != nil {
		t.Fatal(err)
	}
	if fs := c.spec.Faults; fs.MidAt != 3 || fs.MidCrash != 0.1 || !fs.Phased() {
		t.Fatalf("spec faults %+v", c.spec.Faults)
	}
	if err := c.faultsCommand("faults rootkill@sweep=2"); err != nil {
		t.Fatal(err)
	}
	if fs := c.spec.Faults; fs.MidAt != 2 || !fs.MidKillRoot || fs.MidCrash != 0 {
		t.Fatalf("rootkill plan %+v", c.spec.Faults)
	}
	if err := c.faultsCommand("faults CRASH@SWEEP=4=0.05 linkfail@sweep=4=0.2 crash=0.02"); err != nil {
		t.Fatalf("mixed pre-query + mid-sweep plan refused: %v", err)
	}
	if fs := c.spec.Faults; fs.MidAt != 4 || fs.MidCrash != 0.05 || fs.MidLinkFail != 0.2 || fs.Crash != 0.02 {
		t.Fatalf("mixed plan %+v", c.spec.Faults)
	}
	for _, bad := range []string{
		"faults crash@sweep=3=0.1 rootkill@sweep=2", // conflicting boundaries
		"faults crash@sweep=3",                      // crash needs a rate
		"faults rootkill@sweep=2=0.5",               // rootkill takes no rate
		"faults crash@sweep=0=0.1",                  // boundary must be >= 1
		"faults crash@sweep=x=0.1",                  // unparsable boundary
		"faults frob@sweep=3=0.1",                   // unknown mid fault
		"faults crash@sweep=3=1.5",                  // rate out of range (Validate)
	} {
		if err := c.faultsCommand(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
	if err := c.faultsCommand("faults off"); err != nil || c.spec.Faults.Active() {
		t.Fatalf("faults off: %+v err=%v", c.spec.Faults, err)
	}
}

// TestExecResilientSolo: with a phased root-kill plan armed and a retry
// budget, a console statement routes through the engine, survives the
// mid-sweep fault, and answers exactly over the survivors; with the
// budget off the same statement degrades but still answers. WHERE
// clauses are refused under a phased plan with guidance.
func TestExecResilientSolo(t *testing.T) {
	c := testConsole(t)
	model := energy.MoteDefaults()
	if err := c.setCommand("set retry 2"); err != nil {
		t.Fatal(err)
	}
	if err := c.faultsCommand("faults rootkill@sweep=2 crash@sweep=2=0.05"); err != nil {
		t.Fatal(err)
	}
	if err := c.execResilientSolo("SELECT median(value)", model); err != nil {
		t.Fatalf("resilient median: %v", err)
	}
	r := c.eng.Submit(context.Background(), []engine.Job{{
		Spec: c.spec, Query: engine.Query{Kind: engine.KindMedian},
	}})[0]
	if r.Failed() || !r.Exact || r.Retries < 1 || r.Degraded {
		t.Fatalf("resilient result %+v", r)
	}
	if r.SurvivorFrac <= 0 || r.SurvivorFrac >= 1 {
		t.Fatalf("survivor fraction %g not in (0,1)", r.SurvivorFrac)
	}

	if err := c.setCommand("set retry off"); err != nil {
		t.Fatal(err)
	}
	if err := c.execResilientSolo("SELECT median(value)", model); err != nil {
		t.Fatalf("degraded statement should still answer: %v", err)
	}
	r = c.eng.Submit(context.Background(), []engine.Job{{
		Spec: c.spec, Query: engine.Query{Kind: engine.KindMedian},
	}})[0]
	if r.Failed() || !r.Degraded || r.TruthKnown {
		t.Fatalf("budget-0 result %+v", r)
	}

	if err := c.execResilientSolo("SELECT count(value) WHERE value < 10", model); err == nil ||
		!strings.Contains(err.Error(), "mid-sweep") {
		t.Fatalf("WHERE clause should be refused under a phased plan, got %v", err)
	}
}
