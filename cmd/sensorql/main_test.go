package main

import (
	"context"
	"strings"
	"testing"
	"time"

	"sensoragg/internal/core"
	"sensoragg/internal/engine"
	"sensoragg/internal/query"
)

func testConsole(t *testing.T) *console {
	t.Helper()
	c := &console{session: engine.NewSession()}
	if err := c.use(engine.Spec{Topology: "grid", N: 64, Workload: "uniform", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSetProbeWidth covers the session knob's parsing: defaults, explicit
// widths, reset to default, and rejection of junk.
func TestSetProbeWidth(t *testing.T) {
	c := testConsole(t)
	if c.probeWidth != 0 {
		t.Fatalf("fresh console probe width %d, want 0 (engine default %d)", c.probeWidth, core.DefaultProbeWidth)
	}
	if err := c.setCommand("set probewidth 16"); err != nil || c.probeWidth != 16 {
		t.Errorf("set probewidth 16: width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("SET PROBEWIDTH 4"); err != nil || c.probeWidth != 4 {
		t.Errorf("SET PROBEWIDTH 4 (case-insensitive): width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("set probewidth default"); err != nil || c.probeWidth != 0 {
		t.Errorf("set probewidth default: width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("set"); err != nil {
		t.Errorf("bare set should print, not error: %v", err)
	}
	for _, bad := range []string{"set probewidth 0", "set probewidth -3", "set probewidth x", "set probewidth 2000", "set frobnitz 3"} {
		if err := c.setCommand(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestSessionWidthFlowsIntoStatements: the session default reaches the
// selection path (visible in the k-ary detail string), and an explicit
// USING probewidth wins over it.
func TestSessionWidthFlowsIntoStatements(t *testing.T) {
	c := testConsole(t)

	res, err := c.exec("SELECT median(value)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 8") {
		t.Errorf("engine-default run detail %q, want width %d", res.Detail, core.DefaultProbeWidth)
	}

	if err := c.setCommand("set probewidth 4"); err != nil {
		t.Fatal(err)
	}
	res, err = c.exec("SELECT median(value)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 4") {
		t.Errorf("session width 4 run detail %q", res.Detail)
	}

	res, err = c.exec("SELECT median(value) USING probewidth=2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 2") {
		t.Errorf("USING probewidth=2 run detail %q", res.Detail)
	}

	// Multi-quantile rides the same knob and reports every value.
	res, err = c.exec("SELECT quantiles(value, 0.25, 0.5, 0.9)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Errorf("quantiles returned %d values", len(res.Values))
	}
}

// TestSetFuse covers the SET FUSE knob and the fused statement batch: the
// semicolon line must answer every statement exactly as solo execution
// does, for one shared plane's cost.
func TestSetFuse(t *testing.T) {
	c := testConsole(t)
	if c.fuse {
		t.Fatal("fresh console has fuse on")
	}
	if err := c.setCommand("set fuse on"); err != nil || !c.fuse {
		t.Fatalf("set fuse on: fuse=%v err=%v", c.fuse, err)
	}
	if err := c.setCommand("SET FUSE OFF"); err != nil || c.fuse {
		t.Fatalf("SET FUSE OFF: fuse=%v err=%v", c.fuse, err)
	}
	if err := c.setCommand("set fuse maybe"); err == nil {
		t.Error("set fuse maybe accepted")
	}
}

// TestFuseMemberMapping: statements map onto fusion-batch slots; WHERE
// clauses and non-exact aggregates stay out.
func TestFuseMemberMapping(t *testing.T) {
	fusable := []string{
		"SELECT median(value)",
		"SELECT quantile(value, 0.9)",
		"SELECT quantiles(value, 0.25, 0.5)",
		"SELECT count(value)",
		"SELECT sum(value)",
		"SELECT min(value)",
		"SELECT max(value)",
		"SELECT avg(value)",
		"SELECT median(value) USING probewidth=4",
	}
	for _, s := range fusable {
		q, err := query.Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if _, ok := fuseMember(q); !ok {
			t.Errorf("%q should be fusable", s)
		}
	}
	unfusable := []string{
		"SELECT median(value) WHERE value < 100",
		"SELECT apxmedian(value)",
		"SELECT distinct(value)",
		"SELECT apxcount(value)",
	}
	for _, s := range unfusable {
		q, err := query.Parse(s)
		if err != nil {
			t.Fatalf("%s: %v", s, err)
		}
		if _, ok := fuseMember(q); ok {
			t.Errorf("%q should not be fusable", s)
		}
	}
}

// TestExecFusedMatchesSolo: the fused batch's answers equal the statements
// run one at a time, and the whole batch costs less than the solo total.
func TestExecFusedMatchesSolo(t *testing.T) {
	stmts := []string{
		"SELECT median(value)",
		"SELECT quantile(value, 0.9)",
		"SELECT count(value)",
		"SELECT sum(value)",
	}
	solo := testConsole(t)
	var soloVals []float64
	var soloBits, soloMessages int64
	for _, s := range stmts {
		res, err := solo.exec(s)
		if err != nil {
			t.Fatal(err)
		}
		soloVals = append(soloVals, res.Value)
		soloBits += res.Comm.TotalBits
		soloMessages += res.Comm.Messages
	}

	c := testConsole(t)
	members := make([]engine.FusedMember, len(stmts))
	for i, s := range stmts {
		q, err := query.Parse(s)
		if err != nil {
			t.Fatal(err)
		}
		mb, ok := fuseMember(q)
		if !ok {
			t.Fatalf("%q not fusable", s)
		}
		members[i] = mb
	}
	nw := c.net.Network()
	before := nw.Meter.Snapshot()
	res, err := engine.RunFused(context.Background(), c.net, members, time.Time{})
	if err != nil {
		t.Fatal(err)
	}
	delta := nw.Meter.Since(before)
	for i, m := range res.Members {
		if m.Err != nil {
			t.Fatalf("%s: %v", stmts[i], m.Err)
		}
		got := m.AggValues
		for _, v := range m.Values {
			got = append([]float64{float64(v)}, got...)
		}
		if got[0] != soloVals[i] {
			t.Errorf("%s: fused %g != solo %g", stmts[i], got[0], soloVals[i])
		}
	}
	// Rounds are where fusion wins outright (4 statements, one plane);
	// total bits also drop, though less than the round ratio on a tiny
	// 64-node deployment because the merged chain packs more probes into
	// each surviving sweep.
	if 2*delta.Messages >= soloMessages {
		t.Errorf("fused batch used %d messages vs %d solo total — want <half", delta.Messages, soloMessages)
	}
	if delta.TotalBits >= soloBits {
		t.Errorf("fused batch cost %d bits vs %d solo total — want strictly less", delta.TotalBits, soloBits)
	}
}
