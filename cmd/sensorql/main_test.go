package main

import (
	"strings"
	"testing"

	"sensoragg/internal/core"
	"sensoragg/internal/engine"
)

func testConsole(t *testing.T) *console {
	t.Helper()
	c := &console{session: engine.NewSession()}
	if err := c.use(engine.Spec{Topology: "grid", N: 64, Workload: "uniform", Seed: 1}); err != nil {
		t.Fatal(err)
	}
	return c
}

// TestSetProbeWidth covers the session knob's parsing: defaults, explicit
// widths, reset to default, and rejection of junk.
func TestSetProbeWidth(t *testing.T) {
	c := testConsole(t)
	if c.probeWidth != 0 {
		t.Fatalf("fresh console probe width %d, want 0 (engine default %d)", c.probeWidth, core.DefaultProbeWidth)
	}
	if err := c.setCommand("set probewidth 16"); err != nil || c.probeWidth != 16 {
		t.Errorf("set probewidth 16: width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("SET PROBEWIDTH 4"); err != nil || c.probeWidth != 4 {
		t.Errorf("SET PROBEWIDTH 4 (case-insensitive): width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("set probewidth default"); err != nil || c.probeWidth != 0 {
		t.Errorf("set probewidth default: width=%d err=%v", c.probeWidth, err)
	}
	if err := c.setCommand("set"); err != nil {
		t.Errorf("bare set should print, not error: %v", err)
	}
	for _, bad := range []string{"set probewidth 0", "set probewidth -3", "set probewidth x", "set probewidth 2000", "set frobnitz 3"} {
		if err := c.setCommand(bad); err == nil {
			t.Errorf("%q accepted", bad)
		}
	}
}

// TestSessionWidthFlowsIntoStatements: the session default reaches the
// selection path (visible in the k-ary detail string), and an explicit
// USING probewidth wins over it.
func TestSessionWidthFlowsIntoStatements(t *testing.T) {
	c := testConsole(t)

	res, err := c.exec("SELECT median(value)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 8") {
		t.Errorf("engine-default run detail %q, want width %d", res.Detail, core.DefaultProbeWidth)
	}

	if err := c.setCommand("set probewidth 4"); err != nil {
		t.Fatal(err)
	}
	res, err = c.exec("SELECT median(value)")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 4") {
		t.Errorf("session width 4 run detail %q", res.Detail)
	}

	res, err = c.exec("SELECT median(value) USING probewidth=2")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(res.Detail, "width 2") {
		t.Errorf("USING probewidth=2 run detail %q", res.Detail)
	}

	// Multi-quantile rides the same knob and reports every value.
	res, err = c.exec("SELECT quantiles(value, 0.25, 0.5, 0.9)")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Values) != 3 {
		t.Errorf("quantiles returned %d values", len(res.Values))
	}
}
