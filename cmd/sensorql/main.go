// Command sensorql is an interactive console for the TAG-style query
// language over a simulated sensor network: type SQL-ish aggregate
// statements, get answers plus the paper's per-node communication cost.
//
//	$ go run ./cmd/sensorql -topology rgg -n 2048 -workload drift
//	> SELECT median(value)
//	> SELECT quantile(value, 0.99) WHERE value >= 100
//	> SELECT distinct(value) USING sketch=1, m=256
//
// Statements are read line by line from stdin, so the console scripts
// cleanly: `echo "SELECT median(value)" | go run ./cmd/sensorql`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"math"
	"os"
	"strings"

	"sensoragg/internal/agg"
	"sensoragg/internal/energy"
	"sensoragg/internal/netsim"
	"sensoragg/internal/query"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/workload"
)

func main() {
	topo := flag.String("topology", "grid", "line|ring|star|grid|torus|complete|btree|rgg")
	n := flag.Int("n", 1024, "number of nodes")
	wl := flag.String("workload", "uniform", "input distribution")
	maxX := flag.Uint64("maxx", 0, "value domain bound X (default 4·n)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	if err := run(*topo, *n, *wl, *maxX, *seed); err != nil {
		fmt.Fprintf(os.Stderr, "sensorql: %v\n", err)
		os.Exit(1)
	}
}

func run(topo string, n int, wl string, maxX, seed uint64) error {
	if maxX == 0 {
		maxX = uint64(4 * n)
	}
	g, err := buildGraph(topo, n, seed)
	if err != nil {
		return err
	}
	values := workload.Generate(workload.Kind(wl), g.N(), maxX, seed)
	nw := netsim.New(g, values, maxX, netsim.WithSeed(seed))
	net := agg.NewNet(spantree.NewFast(nw))
	model := energy.MoteDefaults()

	fmt.Printf("sensorql — %s, N=%d, X=%d, workload %s\n", g.Name, g.N(), maxX, wl)
	fmt.Println(`type a statement (e.g. SELECT median(value)), "help", or "quit"`)

	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		switch strings.ToLower(line) {
		case "":
		case "quit", "exit", "\\q":
			return nil
		case "help", "\\h":
			printHelp()
		default:
			res, err := query.Exec(net, line)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				break
			}
			value := formatValue(res.Value)
			fmt.Printf("%s   (%s)\n", value, res.Detail)
			perQuery := float64(res.Comm.MaxPerNode)
			fmt.Printf("cost: %d bits/node (max), %d total bits — ≈ %s on the hottest node\n",
				res.Comm.MaxPerNode, res.Comm.TotalBits,
				energy.FormatJoules(perQuery*(model.TxPerBit+model.RxPerBit)/2))
		}
		fmt.Print("> ")
	}
	return scanner.Err()
}

func formatValue(v float64) string {
	if v == math.Trunc(v) && math.Abs(v) < 1e15 {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%.3f", v)
}

func printHelp() {
	fmt.Println(`aggregates:
  min(value) max(value) count(value) sum(value) avg(value)      Fact 2.1
  median(value)                                  exact, Thm 3.2
  quantile(value, PHI)                           exact k-order statistic, §3.4
  apxmedian(value)  [USING eps=E]                randomized, Thm 4.5
  apxmedian2(value) [USING eps=E, beta=B]        polyloglog, Cor 4.8
  apxcount(value)                                one α-counting instance, Fact 2.2
  distinct(value) [USING sketch=1, m=M]          §5: exact or sketch
  f2(value) [USING rows=R, cols=C]               AMS [1] second frequency moment
clauses:
  WHERE value < C | value >= C | value BETWEEN A AND B | ... AND ...
  USING key=value, ...`)
}

func buildGraph(topo string, n int, seed uint64) (*topology.Graph, error) {
	side := int(math.Sqrt(float64(n)))
	switch topo {
	case "line":
		return topology.Line(n), nil
	case "ring":
		return topology.Ring(n), nil
	case "star":
		return topology.Star(n), nil
	case "grid":
		return topology.Grid(side, side), nil
	case "torus":
		return topology.Torus(side, side), nil
	case "complete":
		return topology.Complete(n), nil
	case "btree":
		return topology.BinaryTree(n), nil
	case "rgg":
		return topology.RandomGeometric(n, 0, seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", topo)
	}
}
