// Command sensorql is an interactive console for the TAG-style query
// language over a simulated sensor network: type SQL-ish aggregate
// statements, get answers plus the paper's per-node communication cost.
//
//	$ go run ./cmd/sensorql -topology rgg -n 2048 -workload drift
//	> SELECT median(value)
//	> SELECT quantile(value, 0.99) WHERE value >= 100
//	> SELECT distinct(value) USING sketch=1, m=256
//	> net grid 4096 zipf 7
//	> faults crash=0.05 dup=0.1
//
// The `faults` command attaches an internal/faults plan to the deployment:
// crashes and dead links trigger the spantree self-healing repair (cost
// reported once), and subsequent statements run over the healed tree with
// message-level faults applied per delivery.
//
// Deployments come from the engine's session cache: the `net` command
// switches networks, and switching back to a deployment you already used
// reuses its cached graph, spanning tree, and workload instead of
// rebuilding them (the hot path when comparing queries across networks).
//
// Statements are read line by line from stdin, so the console scripts
// cleanly: `echo "SELECT median(value)" | go run ./cmd/sensorql`.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/energy"
	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/query"
	"sensoragg/internal/spantree"
)

func main() {
	topo := flag.String("topology", "grid", "line|ring|star|grid|torus|complete|btree|rgg")
	n := flag.Int("n", 1024, "number of nodes")
	wl := flag.String("workload", "uniform", "input distribution")
	maxX := flag.Uint64("maxx", 0, "value domain bound X (default 4·n)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	spec := engine.Spec{Topology: *topo, N: *n, Workload: *wl, MaxX: *maxX, Seed: *seed}
	if err := run(spec); err != nil {
		fmt.Fprintf(os.Stderr, "sensorql: %v\n", err)
		os.Exit(1)
	}
}

// console holds the session state: the engine's topology cache, the
// currently selected deployment, and the session-level protocol knobs.
type console struct {
	session *Session
	net     *agg.Net
	spec    engine.Spec
	// probeWidth is the session's k-ary probe batch width for selection
	// statements (SET PROBEWIDTH k); 0 means the engine default. A
	// statement-level USING probewidth=k overrides it.
	probeWidth int
}

// Session aliases the engine session so the type reads naturally here.
type Session = engine.Session

func run(spec engine.Spec) error {
	c := &console{session: engine.NewSession()}
	if err := c.use(spec); err != nil {
		return err
	}
	model := energy.MoteDefaults()

	fmt.Println(`type a statement (e.g. SELECT median(value)), "net", "help", or "quit"`)
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		firstToken := ""
		if fields := strings.Fields(line); len(fields) > 0 {
			firstToken = strings.ToLower(fields[0])
		}
		switch {
		case line == "":
		case strings.EqualFold(line, "quit"), strings.EqualFold(line, "exit"), line == "\\q":
			return nil
		case strings.EqualFold(line, "help"), line == "\\h":
			printHelp()
		case strings.EqualFold(line, "cache"):
			hits, misses := c.session.Stats()
			fmt.Printf("session cache: %d hits, %d misses\n", hits, misses)
		case firstToken == "net":
			if err := c.netCommand(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case firstToken == "faults":
			if err := c.faultsCommand(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case firstToken == "set":
			if err := c.setCommand(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		default:
			res, err := c.exec(line)
			if err != nil {
				fmt.Printf("error: %v\n", err)
				break
			}
			fmt.Printf("%s   (%s)\n", engine.FormatValues(res.Value, res.Values), res.Detail)
			perQuery := float64(res.Comm.MaxPerNode)
			fmt.Printf("cost: %d bits/node (max), %d total bits — ≈ %s on the hottest node\n",
				res.Comm.MaxPerNode, res.Comm.TotalBits,
				energy.FormatJoules(perQuery*(model.TxPerBit+model.RxPerBit)/2))
		}
		fmt.Print("> ")
	}
	return scanner.Err()
}

// exec parses and runs one statement, injecting the session's probe-width
// default when the statement didn't pin one with USING probewidth=k.
func (c *console) exec(line string) (query.Result, error) {
	q, err := query.Parse(line)
	if err != nil {
		return query.Result{}, err
	}
	if _, set := q.Options["probewidth"]; !set && c.probeWidth > 0 {
		q.Options["probewidth"] = float64(c.probeWidth)
	}
	return query.Run(c.net, q)
}

// setCommand parses `set probewidth <k|default>` — the session knobs. Bare
// `set` prints the current values.
func (c *console) setCommand(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 1 {
		if c.probeWidth == 0 {
			fmt.Printf("probewidth: engine default (%d)\n", core.DefaultProbeWidth)
		} else {
			fmt.Printf("probewidth: %d\n", c.probeWidth)
		}
		return nil
	}
	if len(fields) != 3 || !strings.EqualFold(fields[1], "probewidth") {
		return fmt.Errorf("usage: set probewidth <k|default>")
	}
	if strings.EqualFold(fields[2], "default") {
		c.probeWidth = 0
		fmt.Printf("probewidth: engine default (%d)\n", core.DefaultProbeWidth)
		return nil
	}
	k, err := strconv.Atoi(fields[2])
	if err != nil || k < 1 || k > core.MaxProbeWidth {
		return fmt.Errorf("probewidth %q must be an integer in [1, %d] or \"default\"", fields[2], core.MaxProbeWidth)
	}
	c.probeWidth = k
	fmt.Printf("probewidth: %d\n", k)
	return nil
}

// use instantiates a per-console network for spec off the session cache.
// An active fault plan with structural faults first runs the self-healing
// tree repair; subsequent statements execute over the healed tree, with
// the repair cost reported once here.
func (c *console) use(spec engine.Spec) error {
	spec = spec.Normalize()
	nw, err := c.session.Instantiate(spec, spec.Seed)
	if err != nil {
		return err
	}
	ops, hr, err := spantree.NewFastHealed(nw)
	if err != nil {
		return err
	}
	if hr != nil {
		fmt.Printf("faults: %d crashed, %d fragments reattached, %d unreachable — repair cost %d bits\n",
			hr.Crashed, hr.Reattached, hr.Unreachable, hr.Repair.TotalBits)
	}
	c.spec = spec
	c.net = agg.NewNet(ops)
	fmt.Printf("sensorql — %s, N=%d, X=%d, workload %s, tree height %d, faults %s\n",
		spec.Topology, nw.N(), spec.MaxX, spec.Workload, nw.Tree.Height(), spec.Faults)
	return nil
}

// faultsCommand parses `faults [off | key=value ...]` and re-instantiates
// the deployment under the new fault plan. Bare `faults` prints the
// current one.
func (c *console) faultsCommand(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 1 {
		fmt.Printf("faults: %s\n", c.spec.Faults)
		return nil
	}
	spec := c.spec
	if len(fields) == 2 && strings.EqualFold(fields[1], "off") {
		spec.Faults = faults.Spec{}
		return c.use(spec)
	}
	var fs faults.Spec
	for _, f := range fields[1:] {
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("want key=value, got %q", f)
		}
		if strings.EqualFold(k, "seed") {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q: %w", v, err)
			}
			fs.Seed = seed
			continue
		}
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %w", v, err)
		}
		switch strings.ToLower(k) {
		case "crash":
			fs.Crash = rate
		case "linkfail", "link_fail":
			fs.LinkFail = rate
		case "drop":
			fs.Drop = rate
		case "dup":
			fs.Dup = rate
		default:
			return fmt.Errorf("unknown fault %q (crash|linkfail|drop|dup|seed)", k)
		}
	}
	if err := fs.Validate(); err != nil {
		return err
	}
	spec.Faults = fs
	return c.use(spec)
}

// netCommand parses `net [topology [n [workload [seed]]]]` and switches the
// console's deployment. Bare `net` prints the current one.
func (c *console) netCommand(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 1 {
		fmt.Printf("current: %s\n", c.spec)
		return nil
	}
	spec := c.spec
	spec.MaxX = 0 // re-derive from the (possibly new) N
	spec.Topology = fields[1]
	if len(fields) > 2 {
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf("bad n %q: %w", fields[2], err)
		}
		// An interactive typo must not OOM the console: a 2^22-node
		// simulation is already beyond what the sweeps use.
		if n < 1 || n > 1<<22 {
			return fmt.Errorf("n %d out of range [1, %d]", n, 1<<22)
		}
		spec.N = n
	}
	if len(fields) > 3 {
		spec.Workload = fields[3]
	}
	if len(fields) > 4 {
		seed, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", fields[4], err)
		}
		spec.Seed = seed
	}
	return c.use(spec)
}

func printHelp() {
	fmt.Println(`aggregates:
  min(value) max(value) count(value) sum(value) avg(value)      Fact 2.1
  median(value)                                  exact, Thm 3.2 (k-ary batched probes)
  quantile(value, PHI)                           exact k-order statistic, §3.4
  quantiles(value, PHI, PHI, ...)                multi-quantile, one shared probe schedule
  apxmedian(value)  [USING eps=E]                randomized, Thm 4.5
  apxmedian2(value) [USING eps=E, beta=B]        polyloglog, Cor 4.8
  apxcount(value)                                one α-counting instance, Fact 2.2
  distinct(value) [USING sketch=1, m=M]          §5: exact or sketch
  f2(value) [USING rows=R, cols=C]               AMS [1] second frequency moment
clauses:
  WHERE value < C | value >= C | value BETWEEN A AND B | ... AND ...
  USING key=value, ...                   (probewidth=K overrides the session width)
console:
  net [topology [n [workload [seed]]]]   switch deployment (cached trees)
  faults [off | crash=P drop=P dup=P linkfail=P seed=S]
                                         set the deployment's fault plan;
                                         crashes/dead links self-heal the tree
  set probewidth <k|default>             COUNT probes batched per selection sweep
  cache                                  show session cache hits/misses`)
}
