// Command sensorql is an interactive console for the TAG-style query
// language over a simulated sensor network: type SQL-ish aggregate
// statements, get answers plus the paper's per-node communication cost.
//
//	$ go run ./cmd/sensorql -topology rgg -n 2048 -workload drift
//	> SELECT median(value)
//	> SELECT quantile(value, 0.99) WHERE value >= 100
//	> SELECT distinct(value) USING sketch=1, m=256
//	> net grid 4096 zipf 7
//	> faults crash=0.05 dup=0.1
//	> SET FUSE ON
//	> SELECT median(value); SELECT quantile(value, 0.99); SELECT sum(value)
//
// With `SET FUSE ON`, a semicolon-separated line executes as one
// shared-sweep fusion batch: the statements' probe thresholds merge into a
// single broadcast–convergecast schedule (engine.Submit with WithFusion),
// so the line costs roughly one statement's tree traffic instead of one
// per statement.
//
// The console also fronts the continuous-query serving layer: `subscribe
// SELECT median(value)` registers a standing statement, `epoch [k]`
// advances the deployment through the drift model (`set drift <step>`) and
// answers every subscription on one fused probe plane, with delta-narrowing
// seeding each epoch's k-ary search from the last answer.
//
// The `faults` command attaches an internal/faults plan to the deployment:
// crashes and dead links trigger the spantree self-healing repair (cost
// reported once), and subsequent statements run over the healed tree with
// message-level faults applied per delivery.
//
// Deployments come from the engine's session cache: the `net` command
// switches networks, and switching back to a deployment you already used
// reuses its cached graph, spanning tree, and workload instead of
// rebuilding them (the hot path when comparing queries across networks).
//
// Statements are read line by line from stdin, so the console scripts
// cleanly: `echo "SELECT median(value)" | go run ./cmd/sensorql`.
package main

import (
	"bufio"
	"context"
	"flag"
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"strings"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/energy"
	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/obs"
	"sensoragg/internal/query"
	"sensoragg/internal/serve"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
)

func main() {
	topo := flag.String("topology", "grid", "line|ring|star|grid|densegrid|torus|complete|btree|barbell|rgg")
	n := flag.Int("n", 1024, "number of nodes")
	wl := flag.String("workload", "uniform", "input distribution")
	maxX := flag.Uint64("maxx", 0, "value domain bound X (default 4·n)")
	seed := flag.Uint64("seed", 1, "random seed")
	flag.Parse()

	spec := engine.Spec{Topology: *topo, N: *n, Workload: *wl, MaxX: *maxX, Seed: *seed}
	if err := run(spec); err != nil {
		fmt.Fprintf(os.Stderr, "sensorql: %v\n", err)
		os.Exit(1)
	}
}

// console holds the session state: the engine's topology cache, the
// currently selected deployment, and the session-level protocol knobs.
type console struct {
	session *Session
	// eng runs fused statement batches and backs the serving layer — one
	// Submit entrypoint, sharing the console's topology cache.
	eng  *engine.Engine
	net  *agg.Net
	spec engine.Spec
	// probeWidth is the session's k-ary probe batch width for selection
	// statements (SET PROBEWIDTH k); 0 means the engine default. A
	// statement-level USING probewidth=k overrides it.
	probeWidth int
	// fuse enables shared-sweep fusion for semicolon-batched statements
	// (SET FUSE ON|OFF): `SELECT median(value); SELECT quantile(value,
	// 0.9)` then executes as one fusion batch — one merged probe schedule
	// over the deployment instead of one schedule per statement.
	fuse bool
	// robust routes statements through the engine's Byzantine-robust
	// tier (SET ROBUST ON|OFF): answers carry integrity accounting, and
	// adversarial fault plans (`faults byz=...`) are localized and
	// quarantined before the answer. Robust jobs never fuse.
	robust bool

	// Serving state: a lazily-built serve.Service over the current
	// deployment, the console's standing subscriptions by ID, and the
	// per-epoch drift amplitude for `set drift` (0 = static values).
	svc      *serve.Service
	subs     map[int]*serve.Subscription
	drift    uint64
	driftRng *rand.Rand
}

// Session aliases the engine session so the type reads naturally here.
type Session = engine.Session

// newConsole builds a console around one engine, whose session cache every
// layer (solo statements, fused batches, the serving layer) shares.
func newConsole() *console {
	eng := engine.New(engine.Options{})
	return &console{session: eng.Session(), eng: eng}
}

func run(spec engine.Spec) error {
	c := newConsole()
	if err := c.use(spec); err != nil {
		return err
	}
	model := energy.MoteDefaults()

	fmt.Println(`type a statement (e.g. SELECT median(value)), "net", "help", or "quit"`)
	scanner := bufio.NewScanner(os.Stdin)
	fmt.Print("> ")
	for scanner.Scan() {
		line := strings.TrimSpace(scanner.Text())
		firstToken := ""
		if fields := strings.Fields(line); len(fields) > 0 {
			firstToken = strings.ToLower(fields[0])
		}
		switch {
		case line == "":
		case strings.EqualFold(line, "quit"), strings.EqualFold(line, "exit"), line == "\\q":
			return nil
		case strings.EqualFold(line, "help"), line == "\\h":
			printHelp()
		case strings.EqualFold(line, "cache"):
			hits, misses := c.session.Stats()
			fmt.Printf("session cache: %d hits, %d misses\n", hits, misses)
		case strings.EqualFold(line, "stats"):
			c.statsCommand()
		case firstToken == "net":
			if err := c.netCommand(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case firstToken == "faults":
			if err := c.faultsCommand(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case firstToken == "set":
			if err := c.setCommand(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case firstToken == "subscribe":
			if err := c.subscribeCommand(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case firstToken == "unsubscribe":
			if err := c.unsubscribeCommand(line); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		case firstToken == "epoch":
			if err := c.epochCommand(line, model); err != nil {
				fmt.Printf("error: %v\n", err)
			}
		default:
			stmts := splitStatements(line)
			if len(stmts) > 1 && c.fuse && !c.robust {
				if err := c.execFused(stmts, model); err != nil {
					fmt.Printf("error: %v\n", err)
				}
				break
			}
			for _, stmt := range stmts {
				if c.robust {
					if err := c.execRobustSolo(stmt, model); err != nil {
						fmt.Printf("error: %v\n", err)
						break
					}
					continue
				}
				if c.spec.Faults.Phased() {
					// Mid-sweep fault plans need the engine's detect →
					// re-heal → resume machinery; the console's direct
					// net path has none.
					if err := c.execResilientSolo(stmt, model); err != nil {
						fmt.Printf("error: %v\n", err)
						break
					}
					continue
				}
				res, err := c.exec(stmt)
				if err != nil {
					fmt.Printf("error: %v\n", err)
					break
				}
				fmt.Printf("%s   (%s)\n", engine.FormatValues(res.Value, res.Values), res.Detail)
				perQuery := float64(res.Comm.MaxPerNode)
				fmt.Printf("cost: %d bits/node (max), %d total bits — ≈ %s on the hottest node\n",
					res.Comm.MaxPerNode, res.Comm.TotalBits,
					energy.FormatJoules(perQuery*(model.TxPerBit+model.RxPerBit)/2))
			}
		}
		fmt.Print("> ")
	}
	return scanner.Err()
}

// exec parses and runs one statement, injecting the session's probe-width
// default when the statement didn't pin one with USING probewidth=k.
func (c *console) exec(line string) (query.Result, error) {
	q, err := query.Parse(line)
	if err != nil {
		return query.Result{}, err
	}
	if _, set := q.Options["probewidth"]; !set && c.probeWidth > 0 {
		q.Options["probewidth"] = float64(c.probeWidth)
	}
	return query.Run(c.net, q)
}

// setCommand parses the session knobs — `set probewidth <k|default>`,
// `set fuse <on|off>`, and `set drift <step|off>`. Bare `set` prints the
// current values.
func (c *console) setCommand(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 1 {
		if c.probeWidth == 0 {
			fmt.Printf("probewidth: engine default (%d)\n", core.DefaultProbeWidth)
		} else {
			fmt.Printf("probewidth: %d\n", c.probeWidth)
		}
		fmt.Printf("fuse: %s\n", onOff(c.fuse))
		fmt.Printf("robust: %s\n", onOff(c.robust))
		if c.drift == 0 {
			fmt.Println("drift: off (static values across epochs)")
		} else {
			fmt.Printf("drift: ±%d per node per epoch\n", c.drift)
		}
		if c.spec.Retry.Budget == 0 {
			fmt.Println("retry: off (a mid-sweep fault degrades the answer to best-known bounds)")
		} else {
			fmt.Printf("retry: budget %d\n", c.spec.Retry.Budget)
		}
		fmt.Printf("obs: %s\n", onOff(obs.Active() != nil))
		return nil
	}
	if len(fields) != 3 {
		return fmt.Errorf("usage: set probewidth <k|default> | set fuse <on|off> | set robust <on|off> | set drift <step|off> | set retry <n|off> | set obs <on|off>")
	}
	switch {
	case strings.EqualFold(fields[1], "probewidth"):
		if strings.EqualFold(fields[2], "default") {
			c.probeWidth = 0
			fmt.Printf("probewidth: engine default (%d)\n", core.DefaultProbeWidth)
			return nil
		}
		k, err := strconv.Atoi(fields[2])
		if err != nil || k < 1 || k > core.MaxProbeWidth {
			return fmt.Errorf("probewidth %q must be an integer in [1, %d] or \"default\"", fields[2], core.MaxProbeWidth)
		}
		c.probeWidth = k
		fmt.Printf("probewidth: %d\n", k)
		return nil
	case strings.EqualFold(fields[1], "fuse"):
		switch {
		case strings.EqualFold(fields[2], "on"):
			c.fuse = true
		case strings.EqualFold(fields[2], "off"):
			c.fuse = false
		default:
			return fmt.Errorf("fuse %q must be on or off", fields[2])
		}
		fmt.Printf("fuse: %s\n", onOff(c.fuse))
		return nil
	case strings.EqualFold(fields[1], "robust"):
		var want bool
		switch {
		case strings.EqualFold(fields[2], "on"):
			want = true
		case strings.EqualFold(fields[2], "off"):
			want = false
		default:
			return fmt.Errorf("robust %q must be on or off", fields[2])
		}
		if want != c.robust {
			c.robust = want
			// The serving layer bakes Robust in at construction; rebuild
			// it (and its subscriptions) on the next epoch.
			c.closeService()
		}
		if c.robust {
			fmt.Println("robust: on — statements answer on the Byzantine-robust tier (trimmed sectors, audits, integrity bounds; robust jobs run solo)")
		} else {
			fmt.Println("robust: off")
		}
		return nil
	case strings.EqualFold(fields[1], "drift"):
		if strings.EqualFold(fields[2], "off") {
			c.drift = 0
			fmt.Println("drift: off (static values across epochs)")
			return nil
		}
		step, err := strconv.ParseUint(fields[2], 10, 64)
		if err != nil || step == 0 || step > 1<<62 {
			return fmt.Errorf("drift %q must be a positive step or \"off\"", fields[2])
		}
		c.drift = step
		fmt.Printf("drift: ±%d per node per epoch\n", step)
		return nil
	case strings.EqualFold(fields[1], "retry"):
		if strings.EqualFold(fields[2], "off") {
			c.spec.Retry = engine.Retry{}
			// The serving layer bakes the spec in at construction.
			c.closeService()
			fmt.Println("retry: off — a mid-sweep fault degrades the answer to best-known bounds")
			return nil
		}
		n, err := strconv.Atoi(fields[2])
		if err != nil || n < 0 {
			return fmt.Errorf("retry %q must be a non-negative budget or \"off\"", fields[2])
		}
		c.spec.Retry = engine.Retry{Budget: n}
		c.closeService()
		fmt.Printf("retry: budget %d — a mid-sweep fault re-heals and resumes up to %d time(s) before degrading\n", n, n)
		return nil
	case strings.EqualFold(fields[1], "obs"):
		switch {
		case strings.EqualFold(fields[2], "on"):
			// Idempotent: keep an already-active sink so accumulated
			// stats survive a redundant `set obs on`.
			if obs.Active() == nil {
				obs.Enable()
			}
			fmt.Println("obs: on — sweep/batch/epoch events and metrics recording (see `stats`)")
		case strings.EqualFold(fields[2], "off"):
			obs.Disable()
			fmt.Println("obs: off")
		default:
			return fmt.Errorf("obs %q must be on or off", fields[2])
		}
		return nil
	}
	return fmt.Errorf("usage: set probewidth <k|default> | set fuse <on|off> | set robust <on|off> | set drift <step|off> | set retry <n|off> | set obs <on|off>")
}

// execRobustSolo runs one statement on the engine's Byzantine-robust
// tier. Only the exact selection/aggregate statements the engine serves
// robustly are accepted — the same set fusion takes.
func (c *console) execRobustSolo(stmt string, model energy.Model) error {
	q, err := query.Parse(stmt)
	if err != nil {
		return err
	}
	if _, set := q.Options["probewidth"]; !set && c.probeWidth > 0 {
		q.Options["probewidth"] = float64(c.probeWidth)
	}
	eq, ok := fusedQuery(q)
	if !ok {
		return fmt.Errorf("%q has no robust path (exact selection/aggregate without WHERE); SET ROBUST OFF to run it plain", stmt)
	}
	eq.Robust = true
	r := c.eng.Submit(context.Background(), []engine.Job{{ID: "robust", Spec: c.spec, Query: eq}})[0]
	if r.Failed() {
		return fmt.Errorf("%s", r.Error)
	}
	fmt.Printf("%s   (robust%s)\n", engine.FormatValues(r.Value, r.Values), robustDetail(r))
	perQuery := float64(r.BitsPerNode)
	fmt.Printf("cost: %d bits/node (max), %d total bits — ≈ %s on the hottest node\n",
		r.BitsPerNode, r.TotalBits,
		energy.FormatJoules(perQuery*(model.TxPerBit+model.RxPerBit)/2))
	return nil
}

// execResilientSolo routes one statement through the engine when a
// phased (mid-sweep) fault plan is armed: the plan fires while the
// query runs, the engine detects the incomplete sweep, re-heals and
// resumes within the session's retry budget (SET RETRY), or degrades to
// best-known bounds when it runs out.
func (c *console) execResilientSolo(stmt string, model energy.Model) error {
	q, err := query.Parse(stmt)
	if err != nil {
		return err
	}
	if _, set := q.Options["probewidth"]; !set && c.probeWidth > 0 {
		q.Options["probewidth"] = float64(c.probeWidth)
	}
	eq, ok := fusedQuery(q)
	if !ok {
		return fmt.Errorf("%q cannot run under a mid-sweep fault plan (exact selection/aggregate without WHERE only); `faults off` to run it plain", stmt)
	}
	r := c.eng.Submit(context.Background(), []engine.Job{{ID: "resilient", Spec: c.spec, Query: eq}})[0]
	if r.Failed() {
		return fmt.Errorf("%s", r.Error)
	}
	fmt.Printf("%s   (%s)\n", engine.FormatValues(r.Value, r.Values), r.Detail)
	if r.SurvivorFrac > 0 && r.SurvivorFrac < 1 {
		note := ""
		if r.Degraded {
			note = " — DEGRADED (best-known bounds, no exactness claim)"
		}
		fmt.Printf("resilience: %d retry(ies), answer covers %.1f%% of the deployment%s\n",
			r.Retries, r.SurvivorFrac*100, note)
	}
	perQuery := float64(r.BitsPerNode)
	fmt.Printf("cost: %d bits/node (max), %d total bits — ≈ %s on the hottest node\n",
		r.BitsPerNode, r.TotalBits,
		energy.FormatJoules(perQuery*(model.TxPerBit+model.RxPerBit)/2))
	return nil
}

// robustDetail renders a robust result's integrity accounting for the
// console: exact when nothing was suspected, otherwise who was caught
// and how far the answer could be off.
func robustDetail(r engine.Result) string {
	if r.Quarantined == 0 && r.Suspected == 0 && r.IntegrityBound == 0 {
		return ", integrity exact"
	}
	return fmt.Sprintf(", quarantined %d, suspected %d, bound ±%d items — audit %d rounds, %d bits",
		r.Quarantined, r.Suspected, r.IntegrityBound, r.AuditRounds, r.AuditBits)
}

// statsCommand prints a snapshot of the active observability registry —
// the same numbers /metrics would expose — plus the trace depth.
func (c *console) statsCommand() {
	sk := obs.Active()
	if sk == nil {
		fmt.Println("obs: off — enable with `set obs on`")
		return
	}
	snap := sk.Metrics.Snapshot()
	names := make([]string, 0, len(snap.Counters))
	for n := range snap.Counters {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-28s %d\n", n, snap.Counters[n])
	}
	names = names[:0]
	for n := range snap.Gauges {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		fmt.Printf("%-28s %.4f\n", n, snap.Gauges[n])
	}
	names = names[:0]
	for n := range snap.Histograms {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, n := range names {
		h := snap.Histograms[n]
		mean := 0.0
		if h.Count > 0 {
			mean = h.Sum / float64(h.Count)
		}
		fmt.Printf("%-28s count=%d sum=%.4g mean=%.4g\n", n, h.Count, h.Sum, mean)
	}
	fmt.Printf("trace: %d events retained\n", sk.Tracer.Len())
}

func onOff(b bool) string {
	if b {
		return "on"
	}
	return "off"
}

// splitStatements splits a console line on ';' into trimmed non-empty
// statements.
func splitStatements(line string) []string {
	parts := strings.Split(line, ";")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

// fusedQuery maps a parsed statement onto the engine job a fusion batch
// runs: exact selection statements become seeded-stepper members, the
// Fact 2.1 aggregates become riders on the shared rounds. ok is false for
// statements fusion cannot serve (WHERE clauses — each statement would
// need its own filtered multiset — and the randomized/sketch families,
// whose schedules are private).
//
// A console `quantile(value, φ)` maps to KindQuantiles, not KindQuantile:
// the plural kind resolves φ against the protocol-counted N (BatchRank.Phi,
// like query.Run's batched path), which keeps fused answers byte-identical
// to the console's solo execution. KindQuantile resolves against the
// simulator-side population — exec.go's semantics, not the console's.
func fusedQuery(q *query.Query) (engine.Query, bool) {
	if q.Where != nil {
		return engine.Query{}, false
	}
	eq := engine.Query{}
	if w, ok := q.Options["probewidth"]; ok {
		if w != float64(int(w)) || w < 1 || w > float64(core.MaxProbeWidth) {
			return engine.Query{}, false
		}
		eq.ProbeWidth = int(w)
	}
	switch q.Agg {
	case query.AggMedian:
		eq.Kind = engine.KindMedian
	case query.AggQuantile:
		if q.Phi <= 0 || q.Phi > 1 {
			return engine.Query{}, false
		}
		eq.Kind = engine.KindQuantiles
		eq.Phis = []float64{q.Phi}
	case query.AggQuantiles:
		if len(q.Phis) == 0 {
			return engine.Query{}, false
		}
		for _, phi := range q.Phis {
			if phi <= 0 || phi > 1 {
				return engine.Query{}, false
			}
		}
		eq.Kind = engine.KindQuantiles
		eq.Phis = q.Phis
	case query.AggMin:
		eq.Kind = engine.KindMin
	case query.AggMax:
		eq.Kind = engine.KindMax
	case query.AggCount:
		eq.Kind = engine.KindCount
	case query.AggSum:
		eq.Kind = engine.KindSum
	case query.AggAvg:
		eq.Kind = engine.KindAvg
	default:
		return engine.Query{}, false
	}
	return eq, true
}

// execFused runs semicolon-batched statements as one fusion batch on the
// console's deployment: every statement's probes merge into one shared
// sweep schedule (engine.Submit with WithFusion), and the cost line prices
// the whole plane once — the same bits would have been paid per statement
// without fusion.
func (c *console) execFused(stmts []string, model energy.Model) error {
	jobs := make([]engine.Job, len(stmts))
	for i, s := range stmts {
		q, err := query.Parse(s)
		if err != nil {
			return err
		}
		if _, set := q.Options["probewidth"]; !set && c.probeWidth > 0 {
			q.Options["probewidth"] = float64(c.probeWidth)
		}
		eq, ok := fusedQuery(q)
		if !ok {
			return fmt.Errorf("%q is not fusable (exact selection/aggregate without WHERE); SET FUSE OFF to run the batch sequentially", s)
		}
		jobs[i] = engine.Job{ID: fmt.Sprintf("stmt-%d", i+1), Spec: c.spec, Query: eq}
	}
	res := c.eng.Submit(context.Background(), jobs, engine.WithFusion())
	for i, r := range res {
		if r.Failed() {
			fmt.Printf("%-2d %s: error: %s\n", i+1, stmts[i], r.Error)
			continue
		}
		fmt.Printf("%-2d %s: %s\n", i+1, stmts[i], engine.FormatValues(r.Value, r.Values))
	}
	// Every fused member's communication fields price the one shared
	// plane, so the first result speaks for the batch.
	plane := res[0]
	perPlane := float64(plane.BitsPerNode)
	fmt.Printf("fused: %d statements, %d shared sweeps — cost %d bits/node (max), %d total bits — ≈ %s on the hottest node\n",
		len(stmts), plane.SharedSweeps, plane.BitsPerNode, plane.TotalBits,
		energy.FormatJoules(perPlane*(model.TxPerBit+model.RxPerBit)/2))
	return nil
}

// service lazily builds the console's serve.Service over the current
// deployment. The drift closure reads c.drift at each epoch, so `set
// drift` takes effect without rebuilding the service.
func (c *console) service() (*serve.Service, error) {
	if c.svc != nil {
		return c.svc, nil
	}
	c.driftRng = rand.New(rand.NewSource(int64(c.spec.Seed)))
	svc, err := serve.New(serve.Options{
		Spec:   c.spec,
		Engine: c.eng,
		Robust: c.robust,
		Update: func(e int, node topology.NodeID, prev uint64) uint64 {
			step := int64(c.drift)
			if step == 0 {
				return prev
			}
			// Per-node random walk of amplitude ±drift, deterministic from
			// the deployment seed.
			next := int64(prev) + c.driftRng.Int63n(2*step+1) - step
			if next < 0 {
				next = 0
			}
			return uint64(next) // the service clamps to MaxX
		},
	})
	if err != nil {
		return nil, err
	}
	c.svc = svc
	c.subs = make(map[int]*serve.Subscription)
	return svc, nil
}

// closeService tears the serving layer down (deployment switched): every
// subscription dies with the service it was registered on.
func (c *console) closeService() {
	if c.svc == nil {
		return
	}
	c.svc.Close()
	c.svc = nil
	if len(c.subs) > 0 {
		fmt.Printf("serving: deployment changed — %d subscription(s) closed, re-subscribe on the new network\n", len(c.subs))
	}
	c.subs = nil
}

// subscribeCommand registers `subscribe <statement>` as a standing query:
// every subsequent `epoch` answers it on the shared fused plane.
func (c *console) subscribeCommand(line string) error {
	stmt := strings.TrimSpace(line[len("subscribe"):])
	if stmt == "" {
		return fmt.Errorf("usage: subscribe <statement>")
	}
	svc, err := c.service()
	if err != nil {
		return err
	}
	sub, err := svc.Subscribe(context.Background(), stmt)
	if err != nil {
		return err
	}
	c.subs[sub.ID] = sub
	fmt.Printf("subscribed [%d] %s — \"epoch\" delivers per-epoch answers\n", sub.ID, stmt)
	return nil
}

// unsubscribeCommand detaches `unsubscribe <id>`.
func (c *console) unsubscribeCommand(line string) error {
	fields := strings.Fields(line)
	if len(fields) != 2 {
		return fmt.Errorf("usage: unsubscribe <id>")
	}
	id, err := strconv.Atoi(fields[1])
	if err != nil {
		return fmt.Errorf("bad subscription id %q", fields[1])
	}
	sub, ok := c.subs[id]
	if !ok {
		return fmt.Errorf("no subscription [%d]", id)
	}
	sub.Unsubscribe()
	delete(c.subs, id)
	fmt.Printf("unsubscribed [%d]\n", id)
	return nil
}

// epochCommand advances the deployment `epoch [k]` epochs: each advance
// drifts the sensed values (see `set drift`) and re-answers every
// subscription as one fused batch, delta-narrowing each selection from its
// answer history.
func (c *console) epochCommand(line string, model energy.Model) error {
	fields := strings.Fields(line)
	k := 1
	if len(fields) > 1 {
		var err error
		if k, err = strconv.Atoi(fields[1]); err != nil || k < 1 || k > 1<<20 {
			return fmt.Errorf("epoch count %q must be an integer in [1, %d]", fields[1], 1<<20)
		}
	}
	if len(fields) > 2 {
		return fmt.Errorf("usage: epoch [k]")
	}
	svc, err := c.service()
	if err != nil {
		return err
	}
	for i := 0; i < k; i++ {
		out := svc.AdvanceEpoch(context.Background())
		if len(out) == 0 {
			fmt.Printf("epoch %d: advanced (no subscriptions; \"subscribe <statement>\" first)\n", svc.Epoch())
			continue
		}
		for _, r := range out {
			stmt := ""
			if sub, ok := c.subs[r.SubID]; ok {
				stmt = " " + sub.Statement()
			}
			if r.Failed() {
				fmt.Printf("epoch %d [%d]%s: error: %s\n", r.Epoch, r.SubID, stmt, r.Error)
				continue
			}
			seeded := ""
			if r.SeedHit {
				seeded = fmt.Sprintf(", seeded %d/%d sweeps", r.SeededSweeps, r.SharedSweeps)
			}
			if r.Robust {
				seeded += robustDetail(r.Result)
			}
			perEpoch := float64(r.BitsPerNode)
			fmt.Printf("epoch %d [%d]%s: %s — %d bits/node (max)%s — ≈ %s on the hottest node\n",
				r.Epoch, r.SubID, stmt, engine.FormatValues(r.Value, r.Values),
				r.BitsPerNode, seeded,
				energy.FormatJoules(perEpoch*(model.TxPerBit+model.RxPerBit)/2))
		}
	}
	// The console prints from AdvanceEpoch's return value; drain the
	// channel copies so slow-console epochs never count as drops.
	for _, sub := range c.subs {
		drainResults(sub.Results())
	}
	return nil
}

// drainResults empties a subscription channel without blocking.
func drainResults(ch <-chan serve.Result) {
	for {
		select {
		case <-ch:
		default:
			return
		}
	}
}

// use instantiates a per-console network for spec off the session cache.
// An active fault plan with structural faults first runs the self-healing
// tree repair; subsequent statements execute over the healed tree, with
// the repair cost reported once here.
func (c *console) use(spec engine.Spec) error {
	spec = spec.Normalize()
	c.closeService()
	nw, err := c.session.Instantiate(spec, spec.Seed)
	if err != nil {
		return err
	}
	ops, hr, err := spantree.NewFastHealed(nw)
	if err != nil {
		return err
	}
	if hr != nil {
		fmt.Printf("faults: %d crashed, %d fragments reattached, %d unreachable — repair cost %d bits\n",
			hr.Crashed, hr.Reattached, hr.Unreachable, hr.Repair.TotalBits)
	}
	c.spec = spec
	c.net = agg.NewNet(ops)
	fmt.Printf("sensorql — %s, N=%d, X=%d, workload %s, tree height %d, faults %s\n",
		spec.Topology, nw.N(), spec.MaxX, spec.Workload, nw.Tree.Height(), spec.Faults)
	return nil
}

// faultsCommand parses `faults [off | key=value ...]` and re-instantiates
// the deployment under the new fault plan. Bare `faults` prints the
// current one.
func (c *console) faultsCommand(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 1 {
		fmt.Printf("faults: %s\n", c.spec.Faults)
		return nil
	}
	spec := c.spec
	if len(fields) == 2 && strings.EqualFold(fields[1], "off") {
		spec.Faults = faults.Spec{}
		return c.use(spec)
	}
	var fs faults.Spec
	for _, f := range fields[1:] {
		if strings.Contains(strings.ToLower(f), "@sweep=") {
			if err := parseMidFault(&fs, f); err != nil {
				return err
			}
			continue
		}
		k, v, ok := strings.Cut(f, "=")
		if !ok {
			return fmt.Errorf("want key=value, got %q", f)
		}
		if strings.EqualFold(k, "seed") {
			seed, err := strconv.ParseUint(v, 10, 64)
			if err != nil {
				return fmt.Errorf("bad seed %q: %w", v, err)
			}
			fs.Seed = seed
			continue
		}
		if strings.EqualFold(k, "byzmode") {
			fs.ByzMode = strings.ToLower(v)
			continue // Validate vets the mode name below
		}
		rate, err := strconv.ParseFloat(v, 64)
		if err != nil {
			return fmt.Errorf("bad rate %q: %w", v, err)
		}
		switch strings.ToLower(k) {
		case "crash":
			fs.Crash = rate
		case "linkfail", "link_fail":
			fs.LinkFail = rate
		case "drop":
			fs.Drop = rate
		case "dup":
			fs.Dup = rate
		case "byz":
			fs.Byz = rate
		default:
			return fmt.Errorf("unknown fault %q (crash|linkfail|drop|dup|byz|byzmode|seed, or crash@sweep=K=RATE|linkfail@sweep=K=RATE|rootkill@sweep=K)", k)
		}
	}
	if err := fs.Validate(); err != nil {
		return err
	}
	spec.Faults = fs
	return c.use(spec)
}

// parseMidFault parses the phased (mid-sweep) fault tokens —
// crash@sweep=K=RATE, linkfail@sweep=K=RATE, rootkill@sweep=K — into the
// spec's Mid fields. One plan fires at one boundary: every token must
// name the same K.
func parseMidFault(fs *faults.Spec, tok string) error {
	kind, rest, _ := strings.Cut(strings.ToLower(tok), "@sweep=")
	at, rate, hasRate := strings.Cut(rest, "=")
	k, err := strconv.Atoi(at)
	if err != nil || k < 1 {
		return fmt.Errorf("bad sweep boundary %q in %q (want a positive sweep number)", at, tok)
	}
	if fs.MidAt != 0 && fs.MidAt != k {
		return fmt.Errorf("conflicting sweep boundaries %d and %d — one plan fires at one boundary", fs.MidAt, k)
	}
	fs.MidAt = k
	switch kind {
	case "rootkill":
		if hasRate {
			return fmt.Errorf("rootkill@sweep=K takes no rate, got %q", tok)
		}
		fs.MidKillRoot = true
	case "crash", "linkfail":
		if !hasRate {
			return fmt.Errorf("want %s@sweep=K=RATE, got %q", kind, tok)
		}
		r, err := strconv.ParseFloat(rate, 64)
		if err != nil {
			return fmt.Errorf("bad rate %q in %q", rate, tok)
		}
		if kind == "crash" {
			fs.MidCrash = r
		} else {
			fs.MidLinkFail = r
		}
	default:
		return fmt.Errorf("unknown mid-sweep fault %q (crash|linkfail|rootkill)", kind)
	}
	return nil
}

// netCommand parses `net [topology [n [workload [seed]]]]` and switches the
// console's deployment. Bare `net` prints the current one.
func (c *console) netCommand(line string) error {
	fields := strings.Fields(line)
	if len(fields) == 1 {
		fmt.Printf("current: %s\n", c.spec)
		return nil
	}
	spec := c.spec
	spec.MaxX = 0 // re-derive from the (possibly new) N
	spec.Topology = fields[1]
	if len(fields) > 2 {
		n, err := strconv.Atoi(fields[2])
		if err != nil {
			return fmt.Errorf("bad n %q: %w", fields[2], err)
		}
		// An interactive typo must not OOM the console: a 2^22-node
		// simulation is already beyond what the sweeps use.
		if n < 1 || n > 1<<22 {
			return fmt.Errorf("n %d out of range [1, %d]", n, 1<<22)
		}
		spec.N = n
	}
	if len(fields) > 3 {
		spec.Workload = fields[3]
	}
	if len(fields) > 4 {
		seed, err := strconv.ParseUint(fields[4], 10, 64)
		if err != nil {
			return fmt.Errorf("bad seed %q: %w", fields[4], err)
		}
		spec.Seed = seed
	}
	return c.use(spec)
}

func printHelp() {
	fmt.Println(`aggregates:
  min(value) max(value) count(value) sum(value) avg(value)      Fact 2.1
  median(value)                                  exact, Thm 3.2 (k-ary batched probes)
  quantile(value, PHI)                           exact k-order statistic, §3.4
  quantiles(value, PHI, PHI, ...)                multi-quantile, one shared probe schedule
  apxmedian(value)  [USING eps=E]                randomized, Thm 4.5
  apxmedian2(value) [USING eps=E, beta=B]        polyloglog, Cor 4.8
  apxcount(value)                                one α-counting instance, Fact 2.2
  distinct(value) [USING sketch=1, m=M]          §5: exact or sketch
  f2(value) [USING rows=R, cols=C]               AMS [1] second frequency moment
clauses:
  WHERE value < C | value >= C | value BETWEEN A AND B | ... AND ...
  USING key=value, ...                   (probewidth=K overrides the session width)
console:
  net [topology [n [workload [seed]]]]   switch deployment (cached trees)
  faults [off | crash=P drop=P dup=P linkfail=P byz=P byzmode=M seed=S]
                                         set the deployment's fault plan;
                                         crashes/dead links self-heal the tree;
                                         byz=P makes nodes lie, byzmode M is
                                         corrupt|equivocate|collude
  faults crash@sweep=K=P | linkfail@sweep=K=P | rootkill@sweep=K
                                         phased plan: the fault fires at sweep
                                         boundary K WHILE the query runs; the
                                         engine detects the lost subtrees,
                                         re-heals (re-rooting if the root died)
                                         and resumes within SET RETRY's budget,
                                         degrading to best-known bounds after
  set probewidth <k|default>             COUNT probes batched per selection sweep
  set fuse <on|off>                      fuse "stmt; stmt; ..." lines into one
                                         shared-sweep batch (one probe plane
                                         answers every statement at once)
  set robust <on|off>                    answer on the Byzantine-robust tier:
                                         audit and quarantine liars, trim sector
                                         partials, report an integrity bound
  set drift <step|off>                   per-epoch ±step random walk of every
                                         node's reading (the epoch drift model)
  set retry <n|off>                      mid-sweep retry budget: how many
                                         detect → re-heal → resume rounds a
                                         phased fault plan gets before the
                                         answer degrades
  set obs <on|off>                       record sweep/batch/epoch events and
                                         metrics (zero-cost while off)
  stats                                  print the obs registry snapshot
                                         (counters, gauges, histograms, trace depth)
serving (continuous queries):
  subscribe <statement>                  register a standing query
  unsubscribe <id>                       drop it
  epoch [k]                              advance k epochs: drift the values,
                                         answer every subscription on one
                                         fused plane, delta-narrowing each
                                         selection from its answer history
  cache                                  show session cache hits/misses`)
}
