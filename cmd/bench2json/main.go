// Command bench2json converts `go test -bench` output into a JSON
// artifact, so CI can accumulate the benchmark trajectory (name, ns/op,
// and custom metrics like the paper's bits/node) across commits.
//
//	go test -bench=. -benchtime=1x -run='^$' . | bench2json -o BENCH_engine.json
//
// Lines that are not benchmark results (headers, PASS/ok) are folded into
// the metadata section or skipped.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strconv"
	"strings"

	"sensoragg/internal/benchfmt"
)

// Entry and Output alias the schema shared with cmd/benchdiff
// (internal/benchfmt), the single source of truth for the artifact
// format.
type (
	Entry  = benchfmt.Entry
	Output = benchfmt.Artifact
)

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	res, err := parse(os.Stdin)
	if err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
	w := io.Writer(os.Stdout)
	if *out != "" {
		f, err := os.Create(*out)
		if err != nil {
			fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
			os.Exit(1)
		}
		defer f.Close()
		w = f
	}
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	if err := enc.Encode(res); err != nil {
		fmt.Fprintf(os.Stderr, "bench2json: %v\n", err)
		os.Exit(1)
	}
}

func parse(r io.Reader) (*Output, error) {
	res := &Output{Meta: map[string]string{}}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<20), 1<<20)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		switch {
		case line == "", line == "PASS", strings.HasPrefix(line, "ok "), strings.HasPrefix(line, "testing:"):
			continue
		case strings.HasPrefix(line, "goos:"), strings.HasPrefix(line, "goarch:"),
			strings.HasPrefix(line, "pkg:"), strings.HasPrefix(line, "cpu:"):
			k, v, _ := strings.Cut(line, ":")
			res.Meta[k] = strings.TrimSpace(v)
			continue
		case strings.HasPrefix(line, "Benchmark"):
			e, err := parseBench(line)
			if err != nil {
				return nil, err
			}
			res.Entries = append(res.Entries, e)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return res, nil
}

// parseBench parses "BenchmarkX-8  N  v1 unit1  v2 unit2 ...".
func parseBench(line string) (Entry, error) {
	fields := strings.Fields(line)
	if len(fields) < 2 {
		return Entry{}, fmt.Errorf("malformed benchmark line %q", line)
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Entry{}, fmt.Errorf("bad iteration count in %q: %w", line, err)
	}
	e := Entry{Name: fields[0], Iterations: iters, Metrics: map[string]float64{}}
	rest := fields[2:]
	if len(rest)%2 != 0 {
		return Entry{}, fmt.Errorf("odd metric tokens in %q", line)
	}
	for i := 0; i < len(rest); i += 2 {
		v, err := strconv.ParseFloat(rest[i], 64)
		if err != nil {
			return Entry{}, fmt.Errorf("bad metric value %q in %q: %w", rest[i], line, err)
		}
		unit := rest[i+1]
		e.Metrics[unit] = v
		switch unit {
		case "ns/op":
			e.NsPerOp = v
		case "allocs/op":
			e.AllocsPerOp = v
		}
	}
	return e, nil
}
