package main

import (
	"strings"
	"testing"
)

func TestParse(t *testing.T) {
	const input = `goos: linux
goarch: amd64
pkg: sensoragg
cpu: Intel(R) Xeon(R)
BenchmarkEngineMedian8/serial/workers=1-8         	       1	 107737853 ns/op	      1831 bits/node	         8.000 queries/op
BenchmarkEngineMedian8/parallel/workers=8-8       	       1	  30000000 ns/op	      1831 bits/node	         8.000 queries/op
BenchmarkEngines/fast       	       2	   2565371 ns/op	    171 B/op	       1 allocs/op
PASS
ok  	sensoragg	0.307s
`
	out, err := parse(strings.NewReader(input))
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Entries) != 3 {
		t.Fatalf("got %d entries, want 3", len(out.Entries))
	}
	e := out.Entries[0]
	if e.Name != "BenchmarkEngineMedian8/serial/workers=1-8" || e.Iterations != 1 {
		t.Errorf("entry 0 = %+v", e)
	}
	if e.NsPerOp != 107737853 {
		t.Errorf("ns/op = %g", e.NsPerOp)
	}
	if e.Metrics["bits/node"] != 1831 {
		t.Errorf("bits/node = %g", e.Metrics["bits/node"])
	}
	if out.Meta["goos"] != "linux" || out.Meta["pkg"] != "sensoragg" {
		t.Errorf("meta = %v", out.Meta)
	}
	if out.Entries[2].Metrics["ns/op"] != 2565371 {
		t.Errorf("plain entry ns/op = %g", out.Entries[2].Metrics["ns/op"])
	}
	if out.Entries[2].AllocsPerOp != 1 {
		t.Errorf("allocs/op = %g, want 1", out.Entries[2].AllocsPerOp)
	}
}

func TestParseRejectsMalformed(t *testing.T) {
	if _, err := parse(strings.NewReader("BenchmarkX abc\n")); err == nil {
		t.Error("expected error for bad iteration count")
	}
	if _, err := parse(strings.NewReader("BenchmarkX 1 42\n")); err == nil {
		t.Error("expected error for odd metric tokens")
	}
}
