// Command aggsim runs one aggregate query on a simulated sensor network and
// reports the answer, the simulator-side ground truth, and the per-node
// communication statistics — the paper's complexity measure.
//
// Examples:
//
//	aggsim -topology grid -n 4096 -workload zipf -query median
//	aggsim -query apxmedian2 -beta 0.015625 -eps 0.25 -n 16384
//	aggsim -query distinct -workload fewdistinct
//	aggsim -query os -k 100
package main

import (
	"flag"
	"fmt"
	"math"
	"os"

	"sensoragg/internal/agg"
	"sensoragg/internal/baseline"
	"sensoragg/internal/core"
	"sensoragg/internal/distinct"
	"sensoragg/internal/gk"
	"sensoragg/internal/gossip"
	"sensoragg/internal/loglog"
	"sensoragg/internal/netsim"
	"sensoragg/internal/qdigest"
	"sensoragg/internal/sampling"
	"sensoragg/internal/singlehop"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/wire"
	"sensoragg/internal/workload"
)

type options struct {
	topo     string
	n        int
	wl       string
	maxX     uint64
	seed     uint64
	query    string
	k        uint64
	eps      float64
	beta     float64
	engine   string
	sketchP  int
	children int
}

func main() {
	var o options
	flag.StringVar(&o.topo, "topology", "grid", "line|ring|star|grid|torus|complete|btree|rgg")
	flag.IntVar(&o.n, "n", 1024, "number of nodes")
	flag.StringVar(&o.wl, "workload", "uniform", "uniform|zipf|gaussian|exponential|bimodal|constant|fewdistinct|drift")
	flag.Uint64Var(&o.maxX, "maxx", 0, "value domain bound X (default 4·n)")
	flag.Uint64Var(&o.seed, "seed", 1, "random seed")
	flag.StringVar(&o.query, "query", "median", "median|apxmedian|apxmedian2|os|min|max|count|sum|avg|distinct|apxdistinct|gk|sampling|gossip|gossipdistinct|qdigest|collectall|singlehop|buildtree")
	flag.Uint64Var(&o.k, "k", 0, "rank for -query os (default N/2)")
	flag.Float64Var(&o.eps, "eps", 0.25, "failure probability ε for randomized queries")
	flag.Float64Var(&o.beta, "beta", 1.0/64, "precision β for apxmedian2")
	flag.StringVar(&o.engine, "engine", "fast", "fast|goroutine")
	flag.IntVar(&o.sketchP, "sketchp", core.DefaultSketchP, "LogLog register exponent p (m=2^p)")
	flag.IntVar(&o.children, "maxchildren", netsim.DefaultMaxChildren, "spanning-tree degree bound (0=unbounded)")
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "aggsim: %v\n", err)
		os.Exit(1)
	}
}

func buildGraph(o options) (*topology.Graph, error) {
	side := int(math.Sqrt(float64(o.n)))
	switch o.topo {
	case "line":
		return topology.Line(o.n), nil
	case "ring":
		return topology.Ring(o.n), nil
	case "star":
		return topology.Star(o.n), nil
	case "grid":
		return topology.Grid(side, side), nil
	case "torus":
		return topology.Torus(side, side), nil
	case "complete":
		return topology.Complete(o.n), nil
	case "btree":
		return topology.BinaryTree(o.n), nil
	case "rgg":
		return topology.RandomGeometric(o.n, 0, o.seed), nil
	default:
		return nil, fmt.Errorf("unknown topology %q", o.topo)
	}
}

func run(o options) error {
	if o.maxX == 0 {
		o.maxX = uint64(4 * o.n)
	}
	g, err := buildGraph(o)
	if err != nil {
		return err
	}
	values := workload.Generate(workload.Kind(o.wl), g.N(), o.maxX, o.seed)
	nw := netsim.New(g, values, o.maxX, netsim.WithSeed(o.seed), netsim.WithMaxChildren(o.children))

	var ops spantree.Ops
	switch o.engine {
	case "fast":
		ops = spantree.NewFast(nw)
	case "goroutine":
		ops = spantree.NewGoroutine(nw)
	default:
		return fmt.Errorf("unknown engine %q", o.engine)
	}
	net := agg.NewNet(ops, agg.WithSketchP(o.sketchP))
	sorted := core.SortedCopy(values)

	fmt.Printf("network: %s, N=%d, X=%d, tree height %d, max degree %d, workload %s\n",
		g.Name, g.N(), o.maxX, nw.Tree.Height(), nw.Tree.MaxDegree(), o.wl)

	before := nw.Meter.Snapshot()
	var answer string
	var truth string

	switch o.query {
	case "median":
		res, err := core.Median(net)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (%d binary-search iterations)", res.Value, res.Iterations)
		truth = fmt.Sprintf("%d", core.TrueMedian(sorted))
	case "os":
		k := o.k
		if k == 0 {
			k = uint64((len(values) + 1) / 2)
		}
		res, err := core.OrderStatistic(net, k)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (rank %d)", res.Value, k)
		truth = fmt.Sprintf("%d", core.TrueOrderStatistic(sorted, int(k)))
	case "apxmedian":
		res, err := core.ApxMedian(net, core.ApxParams{Epsilon: o.eps})
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (%d α-counting instances, halted early: %v)", res.Value, res.Instances, res.HaltedEarly)
		truth = fmt.Sprintf("%d (rank error α needed: %.4f, guarantee 3σ=%.4f)",
			core.TrueMedian(sorted), core.AlphaNeeded(sorted, float64(len(values))/2, res.Value), 3*net.ApxSigma())
	case "apxmedian2":
		res, err := core.ApxMedian2(net, core.Apx2Params{Beta: o.beta, Epsilon: o.eps})
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (stages %d, interval [%.0f,%.0f), %d instances)",
			res.Value, res.Stages, res.FinalLo, res.FinalHi, res.Instances)
		med := core.TrueMedian(sorted)
		answerErr := math.Abs(float64(res.Value)-float64(med)) / float64(o.maxX)
		truth = fmt.Sprintf("%d (|Δ|/X = %.4f, target β=%.4f)", med, answerErr, o.beta)
	case "min":
		v, _ := net.Min(core.Linear)
		answer = fmt.Sprintf("%d", v)
		truth = fmt.Sprintf("%d", sorted[0])
	case "max":
		v, _ := net.Max(core.Linear)
		answer = fmt.Sprintf("%d", v)
		truth = fmt.Sprintf("%d", sorted[len(sorted)-1])
	case "count":
		answer = fmt.Sprintf("%d", net.Count(core.Linear, wire.True()))
		truth = fmt.Sprintf("%d", len(values))
	case "sum":
		answer = fmt.Sprintf("%d", net.Sum(core.Linear, wire.True()))
		var s uint64
		for _, v := range values {
			s += v
		}
		truth = fmt.Sprintf("%d", s)
	case "avg":
		v, _ := net.Average(core.Linear, wire.True())
		answer = fmt.Sprintf("%.3f", v)
		var s uint64
		for _, v := range values {
			s += v
		}
		truth = fmt.Sprintf("%.3f", float64(s)/float64(len(values)))
	case "distinct":
		res, err := distinct.Exact(ops)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d", res.Distinct)
		truth = fmt.Sprintf("%d", core.TrueDistinct(values))
	case "apxdistinct":
		res, err := distinct.Approximate(ops, o.sketchP, loglog.EstHLL, o.seed)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%.1f (σ=%.3f)", res.Estimate, res.Sigma)
		truth = fmt.Sprintf("%d", core.TrueDistinct(values))
	case "qdigest":
		res, err := qdigest.MedianProtocol(ops, 16)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (rank error bound %d)", res.Value, res.RankErrorBound)
		truth = fmt.Sprintf("%d", core.TrueMedian(sorted))
	case "gk":
		res, err := gk.MedianProtocol(ops, 24)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (rank gap ≤ %d)", res.Value, res.MaxGap)
		truth = fmt.Sprintf("%d", core.TrueMedian(sorted))
	case "sampling":
		res, err := sampling.Median(ops, 128, o.seed)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (from %d samples)", res.Value, res.SampleSize)
		truth = fmt.Sprintf("%d", core.TrueMedian(sorted))
	case "gossip":
		res, err := gossip.Median(nw, gossip.Params{})
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (%d push-sum phases)", res.Value, res.Phases)
		truth = fmt.Sprintf("%d", core.TrueMedian(sorted))
	case "collectall":
		res, err := baseline.CollectAllMedian(ops)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (%d items shipped)", res.Value, res.Items)
		truth = fmt.Sprintf("%d", core.TrueMedian(sorted))
	case "singlehop":
		if o.topo != "complete" {
			return fmt.Errorf("-query singlehop requires -topology complete (all hear all)")
		}
		res, err := singlehop.Median(nw)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("%d (max transmit %d bits/node, %d radio rounds)", res.Value, res.MaxTransmitBits, res.Rounds)
		truth = fmt.Sprintf("%d", core.TrueMedian(sorted))
	case "gossipdistinct":
		res := gossip.Distinct(nw, o.sketchP, loglog.EstHLL, o.seed, gossip.Params{})
		answer = fmt.Sprintf("%.1f (%d gossip rounds)", res.Estimate, res.Rounds)
		truth = fmt.Sprintf("%d", core.TrueDistinct(values))
	case "buildtree":
		res, err := spantree.BuildBFS(nw)
		if err != nil {
			return err
		}
		answer = fmt.Sprintf("tree height %d in %d rounds", res.Tree.Height(), res.Rounds)
		truth = fmt.Sprintf("BFS height %d", topology.BFSTree(g, 0).Height())
	default:
		return fmt.Errorf("unknown query %q", o.query)
	}

	d := nw.Meter.Since(before)
	fmt.Printf("answer: %s\n", answer)
	fmt.Printf("truth:  %s\n", truth)
	fmt.Printf("communication: %d bits/node (max), %d total bits, %d messages\n",
		d.MaxPerNode, d.TotalBits, d.Messages)
	return nil
}
