// Command aggsim runs aggregate queries on simulated sensor networks and
// reports the answer, the simulator-side ground truth, and the per-node
// communication statistics — the paper's complexity measure.
//
// All execution goes through the concurrent query engine
// (internal/engine): a single query is an engine batch of one, and
// -parallel N fans the same query out over N independently-seeded networks
// on a bounded worker pool. Results are deterministic: each run is
// bit-identical to executing its network serially.
//
// Fault plans (-crash/-drop/-dup/-linkfail/-byz) inject deterministic
// faults per run: structural faults trigger a self-healing tree repair
// before the query, Byzantine nodes (-byz, discipline -byzmode) lie in
// their convergecast partials, and the report gains
// crashed/unreachable/repair-bits columns. -robust answers on the
// Byzantine-robust tier — liars are audited and quarantined, sector
// partials are trimmed to capacity, and each answer carries an
// integrity bound.
//
// Examples:
//
//	aggsim -topology grid -n 4096 -workload zipf -query median
//	aggsim -query apxmedian2 -beta 0.015625 -eps 0.25 -n 16384
//	aggsim -query distinct -workload fewdistinct
//	aggsim -query median -parallel 8 -workers 4 -json report.json
//	aggsim -query median -n 576 -crash 0.05 -parallel 4
//	aggsim -query median -parallel 8 -fuse
//
// -fuse turns the fan-out into a *fusion batch*: all runs target one
// deployment (every job uses -seed) and the engine merges their probe
// sweeps into one shared broadcast–convergecast schedule, so 8 medians
// cost roughly one median's tree traffic. Fused results are marked
// [fused] and carry shared_sweeps in the JSON report.
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"
	"time"

	"sensoragg/internal/core"
	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/netsim"
)

type options struct {
	topo     string
	n        int
	wl       string
	maxX     uint64
	seed     uint64
	query    string
	k        uint64
	phi      float64
	phis     string
	aggs     string
	eps      float64
	beta     float64
	engine   string
	sketchP  int
	children int
	probeW   int

	crash     float64
	drop      float64
	dup       float64
	linkfail  float64
	byz       float64
	byzMode   string
	robust    bool
	faultSeed uint64

	parallel int
	fuse     bool
	workers  int
	timeout  time.Duration
	jsonOut  string
}

// registerFlags binds the CLI surface to o — split from main so the
// flag-parsing tests drive a private FlagSet through the same definitions.
func registerFlags(fs *flag.FlagSet, o *options) {
	fs.StringVar(&o.topo, "topology", "grid", "line|ring|star|grid|densegrid|torus|complete|btree|barbell|rgg")
	fs.IntVar(&o.n, "n", 1024, "number of nodes")
	fs.StringVar(&o.wl, "workload", "uniform", "uniform|zipf|gaussian|exponential|bimodal|constant|fewdistinct|drift")
	fs.Uint64Var(&o.maxX, "maxx", 0, "value domain bound X (default 4·n)")
	fs.Uint64Var(&o.seed, "seed", 1, "random seed")
	fs.StringVar(&o.query, "query", "median", "median|quantile|quantiles|fused|os|min|max|count|sum|avg|distinct|apxdistinct|apxmedian|apxmedian2|gk|sampling|gossip|gossipdistinct|qdigest|collectall|singlehop|buildtree")
	fs.Uint64Var(&o.k, "k", 0, "rank for -query os (default N/2)")
	fs.Float64Var(&o.phi, "phi", 0.5, "quantile for -query quantile")
	fs.StringVar(&o.phis, "phis", "0.25,0.5,0.9", "comma-separated quantile fractions for -query quantiles")
	fs.StringVar(&o.aggs, "aggs", "", "comma-separated aggregates for -query fused (default count,sum,min,max)")
	fs.Float64Var(&o.eps, "eps", 0.25, "failure probability ε for randomized queries")
	fs.Float64Var(&o.beta, "beta", 1.0/64, "precision β for apxmedian2")
	fs.StringVar(&o.engine, "engine", "fast", "fast|goroutine")
	fs.IntVar(&o.sketchP, "sketchp", core.DefaultSketchP, "LogLog register exponent p (m=2^p)")
	fs.IntVar(&o.children, "maxchildren", netsim.DefaultMaxChildren, "spanning-tree degree bound (0=unbounded)")
	fs.IntVar(&o.probeW, "probewidth", 0,
		fmt.Sprintf("COUNT probes batched per selection sweep (0 = engine default %d, 1 = classic binary search)", core.DefaultProbeWidth))
	fs.Float64Var(&o.crash, "crash", 0, "fault plan: node crash probability (root exempt)")
	fs.Float64Var(&o.drop, "drop", 0, "fault plan: per-message loss probability")
	fs.Float64Var(&o.dup, "dup", 0, "fault plan: per-message duplication probability")
	fs.Float64Var(&o.linkfail, "linkfail", 0, "fault plan: permanent link failure probability")
	fs.Float64Var(&o.byz, "byz", 0, "fault plan: Byzantine (lying) node probability (root exempt)")
	fs.StringVar(&o.byzMode, "byzmode", "", "Byzantine lie discipline: corrupt|equivocate|collude (default corrupt)")
	fs.BoolVar(&o.robust, "robust", false, "answer on the Byzantine-robust tier: audit + quarantine liars, trim sector partials, report integrity bounds")
	fs.Uint64Var(&o.faultSeed, "faultseed", 0, "pin the fault stream to this seed (0 = per-run seed)")
	fs.IntVar(&o.parallel, "parallel", 1, "run the query on this many independently-seeded networks")
	fs.BoolVar(&o.fuse, "fuse", false, "fuse the -parallel runs into one shared-sweep batch on a single deployment (all runs use -seed; selection/aggregate kinds only)")
	fs.IntVar(&o.workers, "workers", 0, "worker-pool size (default GOMAXPROCS)")
	fs.DurationVar(&o.timeout, "timeout", 0, "per-query deadline (0 = none)")
	fs.StringVar(&o.jsonOut, "json", "", "write the batch report as JSON to this file")
}

func main() {
	var o options
	registerFlags(flag.CommandLine, &o)
	flag.Parse()

	if err := run(o); err != nil {
		fmt.Fprintf(os.Stderr, "aggsim: %v\n", err)
		os.Exit(1)
	}
}

func (o options) spec(seed uint64) engine.Spec {
	// The CLI keeps the historical contract "0 = unbounded"; the engine
	// spec uses 0 for "default bound" and negative for unbounded.
	children := o.children
	if children == 0 {
		children = -1
	}
	return engine.Spec{
		Topology:    o.topo,
		N:           o.n,
		Workload:    o.wl,
		MaxX:        o.maxX,
		Seed:        seed,
		MaxChildren: children,
		TreeEngine:  o.engine,
		Faults: faults.Spec{
			Crash:    o.crash,
			LinkFail: o.linkfail,
			Drop:     o.drop,
			Dup:      o.dup,
			Byz:      o.byz,
			ByzMode:  o.byzMode,
			Seed:     o.faultSeed,
		},
	}
}

func (o options) querySpec() (engine.Query, error) {
	q := engine.Query{
		Kind:       o.query,
		K:          o.k,
		Phi:        o.phi,
		Eps:        o.eps,
		Beta:       o.beta,
		SketchP:    o.sketchP,
		ProbeWidth: o.probeW,
		Robust:     o.robust,
	}
	if o.query == engine.KindQuantiles {
		for _, f := range strings.Split(o.phis, ",") {
			phi, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return q, fmt.Errorf("-phis: bad fraction %q: %w", f, err)
			}
			q.Phis = append(q.Phis, phi)
		}
	}
	if o.aggs != "" {
		for _, a := range strings.Split(o.aggs, ",") {
			q.Aggs = append(q.Aggs, strings.TrimSpace(a))
		}
	}
	return q, nil
}

func run(o options) error {
	if o.parallel < 1 {
		return fmt.Errorf("-parallel must be >= 1")
	}
	query, err := o.querySpec()
	if err != nil {
		return err
	}
	jobs := make([]engine.Job, o.parallel)
	for i := range jobs {
		// Fusion amortizes sweeps across queries at one deployment, so
		// -fuse pins every run to the same seed; the default fan-out keeps
		// its independently-seeded networks.
		seed := o.seed + uint64(i)
		if o.fuse {
			seed = o.seed
		}
		jobs[i] = engine.Job{
			ID:    fmt.Sprintf("run-%d", i),
			Spec:  o.spec(seed),
			Query: query,
		}
	}

	eng := engine.New(engine.Options{Workers: o.workers, Timeout: o.timeout, Fuse: o.fuse})

	// Report the actual node count (grid/torus round down to a square),
	// not the requested one; warming the template here also keeps topology
	// construction out of the per-run wall clock.
	spec := jobs[0].Spec.Normalize()
	actualN := spec.N
	if tmpl, err := eng.Session().Template(spec); err == nil {
		actualN = tmpl.N()
	}

	start := time.Now()
	results := eng.Submit(context.Background(), jobs)
	wall := time.Since(start)
	report := engine.Collect(eng, results, wall)

	fmt.Printf("network: %s, N=%d, X=%d, workload %s — %d run(s) on %d worker(s)\n",
		spec.Topology, actualN, spec.MaxX, spec.Workload, o.parallel, eng.Workers())

	var firstErr error
	for _, r := range results {
		if r.Failed() {
			fmt.Printf("%s (seed %d): FAILED: %s\n", r.ID, r.Spec.Seed, r.Error)
			if firstErr == nil {
				firstErr = fmt.Errorf("%d of %d runs failed", report.Failed, report.Jobs)
			}
			continue
		}
		line := fmt.Sprintf("%s (seed %d): answer %s", r.ID, r.Spec.Seed,
			engine.FormatValues(r.Value, r.Values))
		if r.Detail != "" {
			line += " (" + r.Detail + ")"
		}
		if r.Fused {
			line += " [fused]"
		}
		if r.TruthKnown {
			line += fmt.Sprintf(", truth %s", engine.FormatValue(r.Truth))
			if r.Exact {
				line += " ✓"
			}
		}
		if r.Crashed > 0 || r.RepairBits > 0 {
			line += fmt.Sprintf(" [%d crashed, %d unreachable, repair %d bits]",
				r.Crashed, r.Unreachable, r.RepairBits)
		}
		if r.Robust {
			line += fmt.Sprintf(" [robust: %d quarantined, %d suspected, bound ±%d items, audit %d bits]",
				r.Quarantined, r.Suspected, r.IntegrityBound, r.AuditBits)
		}
		fmt.Printf("%s — %d bits/node, %d total bits, %d messages\n",
			line, r.BitsPerNode, r.TotalBits, r.Messages)
	}

	for _, s := range report.Summary {
		line := fmt.Sprintf("summary[%s]: %d runs (%d failed, %d exact), mean %.1f bits/node (max %d)",
			s.Kind, s.Runs, s.Failed, s.ExactRuns, s.MeanBitsPerNode, s.MaxBitsPerNode)
		if s.MeanRelErr > 0 {
			line += fmt.Sprintf(", mean rel err %.3f", s.MeanRelErr)
		}
		if s.MeanRepairBits > 0 {
			line += fmt.Sprintf(", mean repair %.0f bits", s.MeanRepairBits)
		}
		fmt.Printf("%s, batch wall %v\n", line, wall.Round(time.Millisecond))
	}

	if o.jsonOut != "" {
		f, err := os.Create(o.jsonOut)
		if err != nil {
			return fmt.Errorf("creating %s: %w", o.jsonOut, err)
		}
		defer f.Close()
		if err := report.WriteJSON(f); err != nil {
			return err
		}
		fmt.Printf("report: wrote %s\n", o.jsonOut)
	}
	return firstErr
}
