package main

import (
	"flag"
	"testing"

	"sensoragg/internal/core"
	"sensoragg/internal/engine"
)

// parse drives the real flag definitions through a private FlagSet.
func parse(t *testing.T, args ...string) options {
	t.Helper()
	var o options
	fs := flag.NewFlagSet("aggsim", flag.ContinueOnError)
	registerFlags(fs, &o)
	if err := fs.Parse(args); err != nil {
		t.Fatalf("parse %v: %v", args, err)
	}
	return o
}

// TestProbeWidthFlagDefaultsToEngineDefault: bare aggsim leaves the probe
// width at 0, which the engine resolves to core.DefaultProbeWidth; an
// explicit -probewidth flows through verbatim.
func TestProbeWidthFlagDefaultsToEngineDefault(t *testing.T) {
	o := parse(t)
	q, err := o.querySpec()
	if err != nil {
		t.Fatal(err)
	}
	if q.ProbeWidth != 0 {
		t.Errorf("default -probewidth = %d, want 0 (engine default)", q.ProbeWidth)
	}
	if got := q.WithDefaults(); got.ProbeWidth != core.DefaultProbeWidth {
		t.Errorf("engine resolves probe width to %d, want %d", got.ProbeWidth, core.DefaultProbeWidth)
	}

	o = parse(t, "-probewidth", "16")
	q, err = o.querySpec()
	if err != nil {
		t.Fatal(err)
	}
	if q.ProbeWidth != 16 {
		t.Errorf("-probewidth 16 parsed as %d", q.ProbeWidth)
	}
	if got := q.WithDefaults(); got.ProbeWidth != 16 {
		t.Errorf("engine overrode explicit probe width to %d", got.ProbeWidth)
	}
}

// TestQuantilesAndFusedFlags: -phis and -aggs parse into the engine query.
func TestQuantilesAndFusedFlags(t *testing.T) {
	o := parse(t, "-query", "quantiles", "-phis", "0.1, 0.5,0.99")
	q, err := o.querySpec()
	if err != nil {
		t.Fatal(err)
	}
	if q.Kind != engine.KindQuantiles {
		t.Errorf("kind = %q", q.Kind)
	}
	if len(q.Phis) != 3 || q.Phis[0] != 0.1 || q.Phis[1] != 0.5 || q.Phis[2] != 0.99 {
		t.Errorf("phis = %v", q.Phis)
	}

	o = parse(t, "-query", "fused", "-aggs", "count, avg")
	q, err = o.querySpec()
	if err != nil {
		t.Fatal(err)
	}
	if len(q.Aggs) != 2 || q.Aggs[0] != "count" || q.Aggs[1] != "avg" {
		t.Errorf("aggs = %v", q.Aggs)
	}

	o = parse(t, "-query", "quantiles", "-phis", "0.5,bogus")
	if _, err := o.querySpec(); err == nil {
		t.Error("bad -phis fraction parsed without error")
	}
}

// TestSpecMapping: the historical maxchildren contract (0 = unbounded) and
// fault flags still map onto the engine spec.
func TestSpecMapping(t *testing.T) {
	o := parse(t, "-topology", "torus", "-n", "4096", "-maxchildren", "0", "-crash", "0.05", "-faultseed", "7")
	s := o.spec(o.seed)
	if s.Topology != "torus" || s.N != 4096 {
		t.Errorf("spec = %+v", s)
	}
	if s.MaxChildren != -1 {
		t.Errorf("maxchildren 0 should map to engine -1 (unbounded), got %d", s.MaxChildren)
	}
	if s.Faults.Crash != 0.05 || s.Faults.Seed != 7 {
		t.Errorf("faults = %+v", s.Faults)
	}
}

// TestFuseFlag: -fuse pins every parallel run to the same deployment seed
// (fusion requires one shared network) and flows into the engine options.
func TestFuseFlag(t *testing.T) {
	o := parse(t, "-fuse", "-parallel", "4", "-seed", "9")
	if !o.fuse {
		t.Fatal("-fuse not parsed")
	}
	if o.spec(o.seed).Seed != 9 {
		t.Errorf("fused spec seed = %d, want 9", o.spec(o.seed).Seed)
	}
}

// TestByzAndRobustFlags: -byz/-byzmode land in the fault spec, -robust
// lands on the query, and the defaults leave both off.
func TestByzAndRobustFlags(t *testing.T) {
	o := parse(t)
	if spec := o.spec(1); spec.Faults.Byz != 0 || spec.Faults.ByzMode != "" {
		t.Errorf("default byz plan not empty: %+v", spec.Faults)
	}
	if q, _ := o.querySpec(); q.Robust {
		t.Error("robust defaulted on")
	}

	o = parse(t, "-byz", "0.05", "-byzmode", "equivocate", "-robust", "-query", "median")
	spec := o.spec(7)
	if spec.Faults.Byz != 0.05 || spec.Faults.ByzMode != "equivocate" {
		t.Errorf("byz plan %+v", spec.Faults)
	}
	if err := spec.Faults.Validate(); err != nil {
		t.Fatal(err)
	}
	q, err := o.querySpec()
	if err != nil {
		t.Fatal(err)
	}
	if !q.Robust {
		t.Error("-robust did not reach the query")
	}

	// A bad discipline surfaces at validation, where run() would fail.
	o = parse(t, "-byz", "0.05", "-byzmode", "spoof")
	if err := o.spec(1).Faults.Validate(); err == nil {
		t.Error("byzmode=spoof validated")
	}
}

// TestRobustRunEndToEnd drives run() itself: an adversarial robust
// batch completes, and the robust fields ride the JSON report.
func TestRobustRunEndToEnd(t *testing.T) {
	o := parse(t, "-n", "128", "-byz", "0.06", "-robust", "-query", "median", "-parallel", "2")
	if err := run(o); err != nil {
		t.Fatal(err)
	}
}
