package main

import (
	"strings"
	"testing"

	"sensoragg/internal/scenario"
)

func artifact(cpu string, entries ...Entry) *Artifact {
	return &Artifact{Meta: map[string]string{"cpu": cpu}, Entries: entries}
}

// entry mirrors bench2json's output: the gated fields plus the metrics
// map (whose "allocs/op" presence marks a -benchmem run).
func entry(name string, ns, allocs float64) Entry {
	return Entry{Name: name, NsPerOp: ns, AllocsPerOp: allocs,
		Metrics: map[string]float64{"ns/op": ns, "allocs/op": allocs}}
}

func count(findings []Finding) (regressions int) {
	for _, f := range findings {
		if f.Regression {
			regressions++
		}
	}
	return
}

func TestCompareDetectsNsRegression(t *testing.T) {
	base := artifact("x", entry("BenchmarkA-1", 1000, 10))
	cur := artifact("x", entry("BenchmarkA-1", 1200, 10))
	findings, skipped := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if skipped {
		t.Fatal("ns gate skipped on identical cpu")
	}
	if count(findings) != 1 {
		t.Fatalf("want 1 regression, got %+v", findings)
	}
}

func TestCompareWithinToleranceOK(t *testing.T) {
	base := artifact("x", entry("BenchmarkA-1", 1000, 10))
	cur := artifact("x", entry("BenchmarkA-1", 1100, 11))
	findings, _ := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 0 {
		t.Fatalf("want no regressions, got %+v", findings)
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	base := artifact("x", entry("BenchmarkA-1", 1000, 10))
	cur := artifact("x", entry("BenchmarkA-1", 1000, 13))
	findings, _ := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 1 {
		t.Fatalf("want 1 regression, got %+v", findings)
	}
}

func TestCompareSkipsNsAcrossCPUs(t *testing.T) {
	base := artifact("cpu-a", entry("BenchmarkA-1", 1000, 10))
	cur := artifact("cpu-b", entry("BenchmarkA-1", 5000, 10))
	findings, skipped := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if !skipped {
		t.Fatal("ns gate not skipped across different cpus")
	}
	if count(findings) != 0 {
		t.Fatalf("want no regressions (alloc unchanged), got %+v", findings)
	}
	// Allocation regressions still gate across CPUs.
	cur2 := artifact("cpu-b", entry("BenchmarkA-1", 5000, 20))
	findings, _ = Compare(base, cur2, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 1 {
		t.Fatalf("want alloc regression across cpus, got %+v", findings)
	}
	// -force-ns restores the wall-clock gate.
	findings, skipped = Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, ForceNs: true})
	if skipped || count(findings) != 1 {
		t.Fatalf("forced ns gate: skipped=%v findings=%+v", skipped, findings)
	}
}

// TestMergeSamples: repeated runs gate on the per-benchmark minimum ns/op
// and allocs/op, and refuse to splice runs from different machines.
func TestMergeSamples(t *testing.T) {
	a := artifact("x", entry("BenchmarkA-1", 1200, 10), entry("BenchmarkB-1", 900, 3))
	b := artifact("x", entry("BenchmarkA-1", 1000, 11), entry("BenchmarkB-1", 950, 2))
	merged, err := MergeSamples([]*Artifact{a, b})
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]Entry{}
	for _, e := range merged.Entries {
		byName[e.Name] = e
	}
	if e := byName["BenchmarkA-1"]; e.NsPerOp != 1000 || e.AllocsPerOp != 10 {
		t.Errorf("BenchmarkA merged to ns=%g allocs=%g, want min 1000/10", e.NsPerOp, e.AllocsPerOp)
	}
	if e := byName["BenchmarkB-1"]; e.NsPerOp != 900 || e.AllocsPerOp != 2 {
		t.Errorf("BenchmarkB merged to ns=%g allocs=%g, want min 900/2", e.NsPerOp, e.AllocsPerOp)
	}

	// A noisy outlier run no longer fails the ns gate when a clean sample
	// exists.
	base := artifact("x", entry("BenchmarkA-1", 1000, 10))
	noisy := artifact("x", entry("BenchmarkA-1", 1900, 10))
	clean := artifact("x", entry("BenchmarkA-1", 1050, 10))
	merged, err = MergeSamples([]*Artifact{noisy, clean})
	if err != nil {
		t.Fatal(err)
	}
	findings, _ := Compare(base, merged, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 0 {
		t.Errorf("min-of-samples should absorb the noisy run: %+v", findings)
	}

	if _, err := MergeSamples([]*Artifact{artifact("cpu-a"), artifact("cpu-b")}); err == nil {
		t.Error("merging samples from different CPUs must error")
	}

	// A sample run without -benchmem (no allocs/op metric) reports
	// AllocsPerOp 0; that zero must not win the min and disarm the alloc
	// gate.
	withAllocs := artifact("x", entry("BenchmarkA-1", 1000, 12))
	noBenchmem := artifact("x", Entry{Name: "BenchmarkA-1", NsPerOp: 900,
		Metrics: map[string]float64{"ns/op": 900}})
	merged, err = MergeSamples([]*Artifact{withAllocs, noBenchmem})
	if err != nil {
		t.Fatal(err)
	}
	if e := merged.Entries[0]; e.AllocsPerOp != 12 || e.NsPerOp != 900 {
		t.Errorf("benchmem-less sample disarmed the alloc gate: ns=%g allocs=%g, want 900/12",
			e.NsPerOp, e.AllocsPerOp)
	}
	if got := merged.Entries[0].Metrics["allocs/op"]; got != 12 {
		t.Errorf("merged metrics allocs/op = %g, want 12 (synced to the gated value)", got)
	}

	// A single sample passes through untouched.
	only := artifact("x", entry("BenchmarkA-1", 1, 1))
	merged, err = MergeSamples([]*Artifact{only})
	if err != nil || merged != only {
		t.Errorf("single sample should pass through: %v %v", merged, err)
	}
}

// TestMarkdown renders a stable table for the CI step summary.
func TestMarkdown(t *testing.T) {
	md := Markdown([]Finding{
		{Name: "BenchmarkA-1", Detail: "ns/op 1 -> 2"},
		{Name: "BenchmarkB-1", Regression: true, Detail: "allocs/op 1 -> 9 (limit 3)"},
	}, 2, true)
	for _, want := range []string{
		"2 sample(s)",
		"ns/op gate skipped",
		"| `BenchmarkA-1` | ✅ ok |",
		"| `BenchmarkB-1` | ❌ regression |",
	} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := artifact("x", entry("BenchmarkGone-1", 1000, 10))
	cur := artifact("x", entry("BenchmarkNew-1", 1000, 10))
	findings, _ := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 0 {
		t.Fatalf("missing benchmark must not fail by default: %+v", findings)
	}
	findings, _ = Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, RequireAll: true})
	if count(findings) != 1 {
		t.Fatalf("-require-all must fail on missing benchmark: %+v", findings)
	}
}

// bitsEntry is entry plus the bits/node custom metric the cost benchmarks
// report.
func bitsEntry(name string, ns, allocs, bits float64) Entry {
	e := entry(name, ns, allocs)
	e.Metrics["bits/node"] = bits
	return e
}

func TestCompareDetectsBitsRegression(t *testing.T) {
	base := artifact("x", bitsEntry("BenchmarkA-1", 1000, 10, 800))
	cur := artifact("x", bitsEntry("BenchmarkA-1", 1000, 10, 850))
	findings, _ := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, BitsTol: 0.05})
	if count(findings) != 1 || !strings.Contains(findings[0].Detail, "bits/node") {
		t.Fatalf("want 1 bits/node regression, got %+v", findings)
	}
	// Within tolerance passes, and the detail surfaces the metric.
	cur = artifact("x", bitsEntry("BenchmarkA-1", 1000, 10, 820))
	findings, _ = Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, BitsTol: 0.05})
	if count(findings) != 0 || !strings.Contains(findings[0].Detail, "bits/node 800 -> 820") {
		t.Fatalf("want clean bits/node comparison, got %+v", findings)
	}
	// Improvements are never regressions.
	cur = artifact("x", bitsEntry("BenchmarkA-1", 1000, 10, 400))
	if findings, _ = Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, BitsTol: 0.05}); count(findings) != 0 {
		t.Fatalf("bits/node improvement flagged: %+v", findings)
	}
}

func TestCompareBitsGateSurvivesCPUChange(t *testing.T) {
	// bits/node is deterministic: the gate stays armed when the ns gate
	// auto-skips across different hardware.
	base := artifact("cpu-a", bitsEntry("BenchmarkA-1", 1000, 10, 800))
	cur := artifact("cpu-b", bitsEntry("BenchmarkA-1", 5000, 10, 900))
	findings, skipped := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, BitsTol: 0.05})
	if !skipped {
		t.Fatal("ns gate not skipped across CPUs")
	}
	if count(findings) != 1 || !strings.Contains(findings[0].Detail, "bits/node") {
		t.Fatalf("want the bits/node regression to survive the cpu change, got %+v", findings)
	}
}

func TestCompareMissingBitsMetric(t *testing.T) {
	base := artifact("x", bitsEntry("BenchmarkA-1", 1000, 10, 800))
	cur := artifact("x", entry("BenchmarkA-1", 1000, 10)) // metric vanished
	// Without -require-all: reported, not fatal.
	findings, _ := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, BitsTol: 0.05})
	if count(findings) != 0 || !strings.Contains(findings[0].Detail, "missing") {
		t.Fatalf("want non-fatal missing-metric note, got %+v", findings)
	}
	// With -require-all: a vanished communication metric fails the gate.
	findings, _ = Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, BitsTol: 0.05, RequireAll: true})
	if count(findings) != 1 || !strings.Contains(findings[0].Detail, "bits/node metric missing") {
		t.Fatalf("want missing-metric regression under -require-all, got %+v", findings)
	}
}

// --- scenario gate mode ---

func suiteWith(sums ...scenario.Summary) *scenario.SuiteResult {
	return &scenario.SuiteResult{Tool: "scenlab", Scenarios: sums}
}

// gatedSummary is a 3-rerun scenario summary that passes its declared
// gates; tests perturb one dimension at a time.
func gatedSummary(name string) scenario.Summary {
	limErr, limCV := 0.1, 0.5
	sum := scenario.Summary{
		Name:   name,
		Reruns: 3,
		Gates: scenario.Gates{
			MaxMeanRelErr:   &limErr,
			MaxRepairBitsCV: &limCV,
			Converge:        true,
			MinSamples:      6,
		},
		Samples:        9,
		MeanRelErr:     0.02,
		RepairBitsMean: 100,
		RepairBitsStd:  10,
		RepairBitsCV:   0.1,
		Converged:      true,
		RerunStats: []scenario.RerunStats{
			{Rerun: 0, Samples: 3, RecoveryExact: true, RepairBits: 100},
			{Rerun: 1, Samples: 3, RecoveryExact: true, RepairBits: 110},
			{Rerun: 2, Samples: 3, RecoveryExact: true, RepairBits: 90},
		},
	}
	return sum
}

func TestCompareScenariosAllPass(t *testing.T) {
	findings := CompareScenarios(suiteWith(gatedSummary("s1"), gatedSummary("s2")), true)
	if len(findings) != 8 {
		t.Fatalf("want 8 findings (4 gates x 2 scenarios), got %d: %+v", len(findings), findings)
	}
	if count(findings) != 0 {
		t.Fatalf("expected all pass: %+v", findings)
	}
	for _, f := range findings {
		if !strings.HasPrefix(f.Name, "scenario/") {
			t.Fatalf("finding name %q not namespaced", f.Name)
		}
	}
}

func TestCompareScenariosVarianceBoundary(t *testing.T) {
	// CV exactly at the limit passes; any excess fails — mirroring the
	// inclusive tolerance convention of the bench gates.
	at := gatedSummary("at-limit")
	at.RepairBitsCV = *at.Gates.MaxRepairBitsCV
	over := gatedSummary("over-limit")
	over.RepairBitsCV = *over.Gates.MaxRepairBitsCV * 1.0001
	findings := CompareScenarios(suiteWith(at, over), false)
	var atPass, overPass bool
	for _, f := range findings {
		switch f.Name {
		case "scenario/at-limit/max-repair-bits-cv":
			atPass = !f.Regression
		case "scenario/over-limit/max-repair-bits-cv":
			overPass = !f.Regression
		}
	}
	if !atPass || overPass {
		t.Fatalf("boundary: at-limit pass=%v over-limit pass=%v", atPass, overPass)
	}
}

func TestCompareScenariosMissingRerun(t *testing.T) {
	// A summary whose rerun stats don't cover every declared rerun is a
	// harness failure, caught by the always-on sample gate.
	sum := gatedSummary("truncated")
	sum.RerunStats = sum.RerunStats[:2]
	findings := CompareScenarios(suiteWith(sum), false)
	failed := map[string]bool{}
	for _, f := range findings {
		if f.Regression {
			failed[f.Name] = true
		}
	}
	if !failed["scenario/truncated/min-samples"] {
		t.Fatalf("missing rerun must fail min-samples: %+v", findings)
	}
	// And the variance gate refuses to certify on 2 reruns.
	if !failed["scenario/truncated/max-repair-bits-cv"] {
		t.Fatalf("variance gate must fail below %d reruns: %+v", scenario.MinRerunsForVariance, findings)
	}
}

func TestCompareScenariosRequireAll(t *testing.T) {
	// An ungated scenario is invisible to the gate step; -require-all
	// turns that silence into a failure, like a vanished benchmark.
	bare := scenario.Summary{
		Name: "ungated", Reruns: 1, Samples: 3,
		RerunStats: []scenario.RerunStats{{Samples: 3, RecoveryExact: true}},
	}
	if got := count(CompareScenarios(suiteWith(bare), false)); got != 0 {
		t.Fatalf("without -require-all: %d regressions", got)
	}
	findings := CompareScenarios(suiteWith(bare), true)
	var flagged bool
	for _, f := range findings {
		if f.Name == "scenario/ungated" && f.Regression {
			flagged = true
		}
	}
	if !flagged {
		t.Fatalf("-require-all must flag the ungated scenario: %+v", findings)
	}
}

func TestCompareScenariosIgnoresStoredVerdict(t *testing.T) {
	// The artifact's own Pass field is not trusted: the gate math runs on
	// the stored statistics.
	sum := gatedSummary("lying")
	sum.MeanRelErr = 99
	sr := suiteWith(sum)
	sr.Pass = true // hand-edited artifact claims success
	if count(CompareScenarios(sr, false)) == 0 {
		t.Fatal("breached rel-err gate must fail regardless of stored verdict")
	}
}
