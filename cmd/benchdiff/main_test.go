package main

import "testing"

func artifact(cpu string, entries ...Entry) *Artifact {
	return &Artifact{Meta: map[string]string{"cpu": cpu}, Entries: entries}
}

func entry(name string, ns, allocs float64) Entry {
	return Entry{Name: name, NsPerOp: ns, AllocsPerOp: allocs}
}

func count(findings []Finding) (regressions int) {
	for _, f := range findings {
		if f.Regression {
			regressions++
		}
	}
	return
}

func TestCompareDetectsNsRegression(t *testing.T) {
	base := artifact("x", entry("BenchmarkA-1", 1000, 10))
	cur := artifact("x", entry("BenchmarkA-1", 1200, 10))
	findings, skipped := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if skipped {
		t.Fatal("ns gate skipped on identical cpu")
	}
	if count(findings) != 1 {
		t.Fatalf("want 1 regression, got %+v", findings)
	}
}

func TestCompareWithinToleranceOK(t *testing.T) {
	base := artifact("x", entry("BenchmarkA-1", 1000, 10))
	cur := artifact("x", entry("BenchmarkA-1", 1100, 11))
	findings, _ := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 0 {
		t.Fatalf("want no regressions, got %+v", findings)
	}
}

func TestCompareDetectsAllocRegression(t *testing.T) {
	base := artifact("x", entry("BenchmarkA-1", 1000, 10))
	cur := artifact("x", entry("BenchmarkA-1", 1000, 13))
	findings, _ := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 1 {
		t.Fatalf("want 1 regression, got %+v", findings)
	}
}

func TestCompareSkipsNsAcrossCPUs(t *testing.T) {
	base := artifact("cpu-a", entry("BenchmarkA-1", 1000, 10))
	cur := artifact("cpu-b", entry("BenchmarkA-1", 5000, 10))
	findings, skipped := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if !skipped {
		t.Fatal("ns gate not skipped across different cpus")
	}
	if count(findings) != 0 {
		t.Fatalf("want no regressions (alloc unchanged), got %+v", findings)
	}
	// Allocation regressions still gate across CPUs.
	cur2 := artifact("cpu-b", entry("BenchmarkA-1", 5000, 20))
	findings, _ = Compare(base, cur2, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 1 {
		t.Fatalf("want alloc regression across cpus, got %+v", findings)
	}
	// -force-ns restores the wall-clock gate.
	findings, skipped = Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, ForceNs: true})
	if skipped || count(findings) != 1 {
		t.Fatalf("forced ns gate: skipped=%v findings=%+v", skipped, findings)
	}
}

func TestCompareMissingAndNew(t *testing.T) {
	base := artifact("x", entry("BenchmarkGone-1", 1000, 10))
	cur := artifact("x", entry("BenchmarkNew-1", 1000, 10))
	findings, _ := Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2})
	if count(findings) != 0 {
		t.Fatalf("missing benchmark must not fail by default: %+v", findings)
	}
	findings, _ = Compare(base, cur, Options{NsTol: 0.15, AllocSlack: 2, RequireAll: true})
	if count(findings) != 1 {
		t.Fatalf("-require-all must fail on missing benchmark: %+v", findings)
	}
}
