// Command benchdiff compares a bench2json artifact against a committed
// baseline and fails (exit 1) on performance regressions, so CI can gate
// merges on the benchmark trajectory instead of only collecting it.
//
//	go test -bench=. -benchtime=20x -benchmem -run='^$' . | bench2json -o bench.json
//	benchdiff -baseline BENCH_BASELINE.json -current bench.json
//
// Two metrics gate:
//
//   - ns/op: fails when current > baseline * (1 + -ns-tol), default 15%.
//     Wall-clock comparisons across different machines are noise, so the
//     ns/op gate automatically skips when the two artifacts record
//     different "cpu:" metadata (override with -force-ns).
//   - allocs/op: fails on any increase beyond -alloc-tol (default 0, with
//     a small absolute slack of -alloc-slack to absorb one-time lazy
//     initialization amortized over short runs). Allocation counts are
//     hardware-independent, so this gate always applies.
//
// Benchmarks present only in the current artifact are reported as new;
// benchmarks missing from the current artifact fail with -require-all.
// Use -update to rewrite the baseline file from the current artifact.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sensoragg/internal/benchfmt"
)

// Entry and Artifact alias the schema shared with cmd/bench2json
// (internal/benchfmt).
type (
	Entry    = benchfmt.Entry
	Artifact = benchfmt.Artifact
)

// Options configures a comparison.
type Options struct {
	NsTol      float64
	AllocTol   float64
	AllocSlack float64
	ForceNs    bool
	RequireAll bool
}

// Finding is one comparison outcome.
type Finding struct {
	Name       string
	Regression bool
	Detail     string
}

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline artifact (bench2json output)")
	currentPath := flag.String("current", "", "current artifact to compare (bench2json output)")
	nsTol := flag.Float64("ns-tol", 0.15, "allowed fractional ns/op regression")
	allocTol := flag.Float64("alloc-tol", 0, "allowed fractional allocs/op regression")
	allocSlack := flag.Float64("alloc-slack", 2, "allowed absolute allocs/op slack")
	forceNs := flag.Bool("force-ns", false, "compare ns/op even across different CPUs")
	requireAll := flag.Bool("require-all", false, "fail when a baseline benchmark is missing from current")
	update := flag.Bool("update", false, "rewrite the baseline from the current artifact and exit")
	flag.Parse()

	if *currentPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -current is required")
		os.Exit(2)
	}
	cur, err := readArtifact(*currentPath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}
	if *update {
		if err := writeArtifact(*baselinePath, cur); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		fmt.Printf("benchdiff: baseline %s updated (%d benchmarks)\n", *baselinePath, len(cur.Entries))
		return
	}
	base, err := readArtifact(*baselinePath)
	if err != nil {
		fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
		os.Exit(2)
	}

	findings, nsSkipped := Compare(base, cur, Options{
		NsTol:      *nsTol,
		AllocTol:   *allocTol,
		AllocSlack: *allocSlack,
		ForceNs:    *forceNs,
		RequireAll: *requireAll,
	})
	if nsSkipped {
		fmt.Printf("benchdiff: cpu differs (%q vs %q) — ns/op gate skipped, allocs/op gate active\n",
			base.Meta["cpu"], cur.Meta["cpu"])
	}
	regressions := 0
	for _, f := range findings {
		tag := "ok"
		if f.Regression {
			tag = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-12s %s: %s\n", tag, f.Name, f.Detail)
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d regression(s) against %s\n", regressions, *baselinePath)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: no regressions across %d benchmark(s)\n", len(findings))
}

// Compare evaluates current against baseline under opts. nsSkipped reports
// that the wall-clock gate was disabled because the artifacts were
// produced on different CPUs.
func Compare(base, cur *Artifact, opts Options) (findings []Finding, nsSkipped bool) {
	nsGate := opts.ForceNs || base.Meta["cpu"] == cur.Meta["cpu"]
	nsSkipped = !nsGate

	curByName := make(map[string]Entry, len(cur.Entries))
	for _, e := range cur.Entries {
		curByName[e.Name] = e
	}
	seen := make(map[string]bool, len(base.Entries))
	for _, b := range base.Entries {
		seen[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			f := Finding{Name: b.Name, Detail: "missing from current run"}
			f.Regression = opts.RequireAll
			findings = append(findings, f)
			continue
		}
		var problems []string
		if nsGate && b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+opts.NsTol) {
			problems = append(problems, fmt.Sprintf("ns/op %.0f -> %.0f (%+.1f%%, tol %.0f%%)",
				b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*opts.NsTol))
		}
		if limit := b.AllocsPerOp*(1+opts.AllocTol) + opts.AllocSlack; c.AllocsPerOp > limit {
			problems = append(problems, fmt.Sprintf("allocs/op %.1f -> %.1f (limit %.1f)",
				b.AllocsPerOp, c.AllocsPerOp, limit))
		}
		if len(problems) > 0 {
			findings = append(findings, Finding{Name: b.Name, Regression: true, Detail: strings.Join(problems, "; ")})
			continue
		}
		findings = append(findings, Finding{Name: b.Name,
			Detail: fmt.Sprintf("ns/op %.0f -> %.0f, allocs/op %.1f -> %.1f", b.NsPerOp, c.NsPerOp, b.AllocsPerOp, c.AllocsPerOp)})
	}
	for _, c := range cur.Entries {
		if !seen[c.Name] {
			findings = append(findings, Finding{Name: c.Name, Detail: "new benchmark (no baseline)"})
		}
	}
	return findings, nsSkipped
}

func readArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &a, nil
}

func writeArtifact(path string, a *Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
