// Command benchdiff compares a bench2json artifact against a committed
// baseline and fails (exit 1) on performance regressions, so CI can gate
// merges on the benchmark trajectory instead of only collecting it.
//
//	go test -bench=. -benchtime=20x -benchmem -run='^$' . | bench2json -o bench.json
//	benchdiff -baseline BENCH_BASELINE.json -current bench.json
//
// Wall-clock numbers on shared runners are noisy, so -current may be
// repeated (one bench2json artifact per bench run): the gate then compares
// the per-benchmark minimum ns/op (and minimum allocs/op) across the
// samples — the least-interfered-with run — instead of a single roll of
// the dice. -samples N asserts exactly N artifacts were supplied, so a CI
// wiring slip fails loudly instead of silently gating on fewer runs.
//
// Three metrics gate:
//
//   - ns/op: fails when current > baseline * (1 + -ns-tol), default 15%.
//     Wall-clock comparisons across different machines are noise, so the
//     ns/op gate automatically skips when the two artifacts record
//     different "cpu:" metadata (override with -force-ns).
//   - allocs/op: fails on any increase beyond -alloc-tol (default 0, with
//     a small absolute slack of -alloc-slack to absorb one-time lazy
//     initialization amortized over short runs). Allocation counts are
//     hardware-independent, so this gate always applies.
//   - bits/node: the paper's own complexity measure, reported by the cost
//     benchmarks as a custom metric. Fails on regressions beyond -bits-tol
//     (default 5%). Communication cost is fully deterministic and
//     hardware-independent, so this gate always applies — a faster CPU
//     cannot hide a protocol that started talking more. A baseline entry
//     that carries bits/node but whose current run lost it fails under
//     -require-all (a silently vanished metric must not disarm the gate).
//
// Benchmarks present only in the current artifact are reported as new;
// benchmarks missing from the current artifact fail with -require-all.
// Use -update to rewrite the baseline file from the current artifact.
//
// benchdiff is also the gate evaluator for the scenario lab: -scenario
// takes a summary.json written by cmd/scenlab and re-evaluates every
// declared release gate (max mean relative error, repair-bits variance
// across reruns, convergence, minimum sample count) from the stored
// rerun statistics — it does not trust the pass/fail verdict baked into
// the artifact. Each gate is reported independently and all must pass.
// Bench and scenario gates compose: supply -current, -scenario, or
// both; under -require-all a scenario that declares no gates at all is
// itself a failure.
//
//	benchdiff -scenario scenlab-out/summary.json -require-all
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"sensoragg/internal/benchfmt"
	"sensoragg/internal/scenario"
)

// Entry and Artifact alias the schema shared with cmd/bench2json
// (internal/benchfmt).
type (
	Entry    = benchfmt.Entry
	Artifact = benchfmt.Artifact
)

// Options configures a comparison.
type Options struct {
	NsTol      float64
	AllocTol   float64
	AllocSlack float64
	BitsTol    float64
	ForceNs    bool
	RequireAll bool
}

// Finding is one comparison outcome.
type Finding struct {
	Name       string
	Regression bool
	Detail     string
}

// pathList collects a repeatable flag.
type pathList []string

func (p *pathList) String() string     { return strings.Join(*p, ",") }
func (p *pathList) Set(v string) error { *p = append(*p, v); return nil }

func main() {
	baselinePath := flag.String("baseline", "BENCH_BASELINE.json", "baseline artifact (bench2json output)")
	var currentPaths pathList
	flag.Var(&currentPaths, "current", "current artifact to compare (bench2json output); repeat for multiple samples")
	samples := flag.Int("samples", 0, "require exactly this many -current artifacts (0 = any); gate on the min ns/op across them")
	nsTol := flag.Float64("ns-tol", 0.15, "allowed fractional ns/op regression")
	allocTol := flag.Float64("alloc-tol", 0, "allowed fractional allocs/op regression")
	allocSlack := flag.Float64("alloc-slack", 2, "allowed absolute allocs/op slack")
	bitsTol := flag.Float64("bits-tol", 0.05, "allowed fractional bits/node regression (deterministic, always gated)")
	forceNs := flag.Bool("force-ns", false, "compare ns/op even across different CPUs")
	requireAll := flag.Bool("require-all", false, "fail when a baseline benchmark is missing from current")
	update := flag.Bool("update", false, "rewrite the baseline from the current artifact and exit")
	mdPath := flag.String("md", "", "also write the comparison as a markdown table to this file (e.g. a CI step summary)")
	scenarioPath := flag.String("scenario", "", "scenlab summary.json: re-evaluate every scenario release gate")
	flag.Parse()

	if len(currentPaths) == 0 && *scenarioPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: at least one of -current or -scenario is required")
		os.Exit(2)
	}
	if *samples > 0 && len(currentPaths) != *samples {
		fmt.Fprintf(os.Stderr, "benchdiff: -samples %d but %d -current artifact(s) supplied\n", *samples, len(currentPaths))
		os.Exit(2)
	}

	var findings []Finding
	nsSkipped := false
	if len(currentPaths) > 0 {
		arts := make([]*Artifact, 0, len(currentPaths))
		for _, path := range currentPaths {
			a, err := readArtifact(path)
			if err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
				os.Exit(2)
			}
			arts = append(arts, a)
		}
		cur, err := MergeSamples(arts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		if *update {
			if err := writeArtifact(*baselinePath, cur); err != nil {
				fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
				os.Exit(2)
			}
			fmt.Printf("benchdiff: baseline %s updated (%d benchmarks)\n", *baselinePath, len(cur.Entries))
			return
		}
		base, err := readArtifact(*baselinePath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		findings, nsSkipped = Compare(base, cur, Options{
			NsTol:      *nsTol,
			AllocTol:   *allocTol,
			AllocSlack: *allocSlack,
			BitsTol:    *bitsTol,
			ForceNs:    *forceNs,
			RequireAll: *requireAll,
		})
		if nsSkipped {
			fmt.Printf("benchdiff: cpu differs (%q vs %q) — ns/op gate skipped, allocs/op gate active\n",
				base.Meta["cpu"], cur.Meta["cpu"])
		}
	}

	if *scenarioPath != "" {
		sr, err := scenario.LoadSuiteResult(*scenarioPath)
		if err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
			os.Exit(2)
		}
		findings = append(findings, CompareScenarios(sr, *requireAll)...)
	}

	regressions := 0
	for _, f := range findings {
		tag := "ok"
		if f.Regression {
			tag = "REGRESSION"
			regressions++
		}
		fmt.Printf("%-12s %s: %s\n", tag, f.Name, f.Detail)
	}
	if *mdPath != "" {
		if err := os.WriteFile(*mdPath, []byte(Markdown(findings, len(currentPaths), nsSkipped)), 0o644); err != nil {
			fmt.Fprintf(os.Stderr, "benchdiff: writing %s: %v\n", *mdPath, err)
			os.Exit(2)
		}
	}
	if regressions > 0 {
		fmt.Fprintf(os.Stderr, "benchdiff: %d gate failure(s)\n", regressions)
		os.Exit(1)
	}
	fmt.Printf("benchdiff: all %d gate(s) pass\n", len(findings))
}

// CompareScenarios re-evaluates every release gate of a scenlab suite
// from its stored rerun statistics. The summary's own pass/fail verdict
// is ignored: the gate math runs here, on the numbers, so a stale or
// hand-edited verdict field can never green-light a merge. Each gate
// becomes one independent finding; under requireAll a scenario that
// declares no gates fails outright (an ungated scenario gates nothing).
func CompareScenarios(sr *scenario.SuiteResult, requireAll bool) []Finding {
	var findings []Finding
	for i := range sr.Scenarios {
		sum := &sr.Scenarios[i]
		if requireAll && !sum.Gates.Declared() {
			findings = append(findings, Finding{
				Name:       "scenario/" + sum.Name,
				Regression: true,
				Detail:     "declares no gates (-require-all)",
			})
		}
		for _, g := range scenario.Evaluate(sum) {
			findings = append(findings, Finding{
				Name:       "scenario/" + sum.Name + "/" + g.Gate,
				Regression: !g.Pass,
				Detail:     g.Detail,
			})
		}
	}
	return findings
}

// MergeSamples folds repeated bench runs into one artifact holding each
// benchmark's minimum ns/op and minimum allocs/op — the run least disturbed
// by runner noise. Samples must come from one machine: mixing CPUs inside
// one -samples set would splice incomparable wall-clocks.
func MergeSamples(arts []*Artifact) (*Artifact, error) {
	if len(arts) == 1 {
		return arts[0], nil
	}
	merged := &Artifact{Meta: arts[0].Meta}
	idx := make(map[string]int)
	// allocSeen marks entries whose sample actually carried -benchmem data
	// (an "allocs/op" metric): a sample missing it reports AllocsPerOp 0,
	// which must not win the min and silently disarm the alloc gate.
	allocSeen := make(map[string]bool)
	hasAllocs := func(e Entry) bool { _, ok := e.Metrics["allocs/op"]; return ok }
	for _, a := range arts {
		if a.Meta["cpu"] != merged.Meta["cpu"] {
			return nil, fmt.Errorf("samples from different CPUs (%q vs %q) cannot be merged",
				merged.Meta["cpu"], a.Meta["cpu"])
		}
		for _, e := range a.Entries {
			i, ok := idx[e.Name]
			if !ok {
				idx[e.Name] = len(merged.Entries)
				merged.Entries = append(merged.Entries, e)
				allocSeen[e.Name] = hasAllocs(e)
				continue
			}
			m := &merged.Entries[i]
			if e.NsPerOp < m.NsPerOp {
				m.NsPerOp = e.NsPerOp
				m.Iterations = e.Iterations
				m.Metrics = e.Metrics
			}
			if hasAllocs(e) && (!allocSeen[e.Name] || e.AllocsPerOp < m.AllocsPerOp) {
				m.AllocsPerOp = e.AllocsPerOp
				allocSeen[e.Name] = true
			}
			// Keep the metrics map consistent with the gated fields, so a
			// baseline written by -update never carries an allocs/op that
			// disagrees with the top-level value (clone before mutating —
			// the map is shared with the source sample).
			if allocSeen[e.Name] && m.Metrics != nil && m.Metrics["allocs/op"] != m.AllocsPerOp {
				clone := make(map[string]float64, len(m.Metrics))
				for k, v := range m.Metrics {
					clone[k] = v
				}
				clone["allocs/op"] = m.AllocsPerOp
				m.Metrics = clone
			}
		}
	}
	return merged, nil
}

// Markdown renders the findings as a GitHub-flavored table for step
// summaries.
func Markdown(findings []Finding, samples int, nsSkipped bool) string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Bench gate (%d sample(s), min ns/op)\n\n", samples)
	if nsSkipped {
		b.WriteString("_ns/op gate skipped: runner CPU differs from the baseline's; allocs/op gate active._\n\n")
	}
	b.WriteString("| Benchmark | Status | Detail |\n|---|---|---|\n")
	for _, f := range findings {
		status := "✅ ok"
		if f.Regression {
			status = "❌ regression"
		}
		fmt.Fprintf(&b, "| `%s` | %s | %s |\n", f.Name, status, strings.ReplaceAll(f.Detail, "|", "\\|"))
	}
	return b.String()
}

// Compare evaluates current against baseline under opts. nsSkipped reports
// that the wall-clock gate was disabled because the artifacts were
// produced on different CPUs.
func Compare(base, cur *Artifact, opts Options) (findings []Finding, nsSkipped bool) {
	nsGate := opts.ForceNs || base.Meta["cpu"] == cur.Meta["cpu"]
	nsSkipped = !nsGate

	curByName := make(map[string]Entry, len(cur.Entries))
	for _, e := range cur.Entries {
		curByName[e.Name] = e
	}
	seen := make(map[string]bool, len(base.Entries))
	for _, b := range base.Entries {
		seen[b.Name] = true
		c, ok := curByName[b.Name]
		if !ok {
			f := Finding{Name: b.Name, Detail: "missing from current run"}
			f.Regression = opts.RequireAll
			findings = append(findings, f)
			continue
		}
		var problems []string
		if nsGate && b.NsPerOp > 0 && c.NsPerOp > b.NsPerOp*(1+opts.NsTol) {
			problems = append(problems, fmt.Sprintf("ns/op %.0f -> %.0f (%+.1f%%, tol %.0f%%)",
				b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp/b.NsPerOp-1), 100*opts.NsTol))
		}
		if limit := b.AllocsPerOp*(1+opts.AllocTol) + opts.AllocSlack; c.AllocsPerOp > limit {
			problems = append(problems, fmt.Sprintf("allocs/op %.1f -> %.1f (limit %.1f)",
				b.AllocsPerOp, c.AllocsPerOp, limit))
		}
		// The communication gate: bits/node is exactly reproducible, so any
		// regression beyond the tolerance is a protocol change, not noise.
		baseBits, baseHas := b.Metrics["bits/node"]
		curBits, curHas := c.Metrics["bits/node"]
		okBits := ""
		switch {
		case baseHas && curHas:
			if baseBits > 0 && curBits > baseBits*(1+opts.BitsTol) {
				problems = append(problems, fmt.Sprintf("bits/node %.0f -> %.0f (%+.1f%%, tol %.0f%%)",
					baseBits, curBits, 100*(curBits/baseBits-1), 100*opts.BitsTol))
			} else {
				okBits = fmt.Sprintf(", bits/node %.0f -> %.0f", baseBits, curBits)
			}
		case baseHas && !curHas:
			// A benchmark that stopped reporting its communication cost
			// would silently disarm this gate; under -require-all that is a
			// failure, like a missing benchmark.
			if opts.RequireAll {
				problems = append(problems, "bits/node metric missing from current run")
			} else {
				okBits = ", bits/node metric missing from current run"
			}
		}
		if len(problems) > 0 {
			findings = append(findings, Finding{Name: b.Name, Regression: true, Detail: strings.Join(problems, "; ")})
			continue
		}
		findings = append(findings, Finding{Name: b.Name,
			Detail: fmt.Sprintf("ns/op %.0f -> %.0f, allocs/op %.1f -> %.1f%s", b.NsPerOp, c.NsPerOp, b.AllocsPerOp, c.AllocsPerOp, okBits)})
	}
	for _, c := range cur.Entries {
		if !seen[c.Name] {
			findings = append(findings, Finding{Name: c.Name, Detail: "new benchmark (no baseline)"})
		}
	}
	return findings, nsSkipped
}

func readArtifact(path string) (*Artifact, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var a Artifact
	if err := json.Unmarshal(data, &a); err != nil {
		return nil, fmt.Errorf("parsing %s: %w", path, err)
	}
	return &a, nil
}

func writeArtifact(path string, a *Artifact) error {
	data, err := json.MarshalIndent(a, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
