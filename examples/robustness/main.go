// Robustness: why the paper's Section 2.2 builds on sketches. Sensor links
// retransmit and multipath-duplicate messages; Considine et al. [2] and
// Nath et al. [10] observed that aggregates with idempotent merges (MAX,
// cardinality sketches) are immune, while COUNT and SUM double-count. This
// example attaches internal/faults duplication plans at increasing rates
// and watches each aggregate — then shows the same items counted by a
// gossiped sketch that never needed a spanning tree at all.
//
// The second act escalates from benign duplication to an adversary: a
// subtree that LIES in its convergecast partials. Idempotent merges are no
// defense against a liar, so the example answers the same median twice —
// plain, where the lie lands in the answer, and on the Byzantine-robust
// tier (internal/byz via the engine's Robust query mode), where
// challenge-sum audits convict the lying subtree, the healing wave
// re-routes around it, and the printed integrity bound certifies how far
// the answer could still be off (0 = exact over the honest survivors).
package main

import (
	"context"
	"fmt"
	"log"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/engine"
	"sensoragg/internal/faults"
	"sensoragg/internal/gossip"
	"sensoragg/internal/loglog"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/wire"
	"sensoragg/internal/workload"
)

func main() {
	duplicationAct()
	adversaryAct()
}

func duplicationAct() {
	const maxX = 4095
	g := topology.Grid(24, 24)
	values := workload.Generate(workload.Gaussian, g.N(), maxX, 11)

	var trueMax, trueSum uint64
	for _, v := range values {
		if v > trueMax {
			trueMax = v
		}
		trueSum += v
	}
	trueCount := uint64(len(values))

	fmt.Printf("grid of %d sensors; truth: count=%d sum=%d max=%d\n\n", g.N(), trueCount, trueSum, trueMax)
	fmt.Printf("%-10s %12s %16s %10s %14s\n", "dup rate", "COUNT", "SUM", "MAX", "APX COUNT")

	var clean float64
	for _, dup := range []float64{0, 0.1, 0.3} {
		nw := netsim.New(g, values, maxX, netsim.WithSeed(11))
		nw.Faults = faults.New(faults.Spec{Dup: dup}, nw.N(), nw.Root(), 11)
		net := agg.NewNet(spantree.NewFast(nw), agg.WithHonestSketches())

		count := net.Count(core.Linear, wire.True())
		sum := net.Sum(core.Linear, wire.True())
		_, max, ok := net.MinMax(core.Linear)
		if !ok {
			log.Fatal("empty network")
		}
		sketch := net.ApxCount(core.Linear, wire.True())
		if dup == 0 {
			clean = sketch
		}
		marker := func(same bool) string {
			if same {
				return "✓"
			}
			return "✗"
		}
		fmt.Printf("%-10.1f %10d %s %14d %s %8d %s %12.1f %s\n",
			dup,
			count, marker(count == trueCount),
			sum, marker(sum == trueSum),
			max, marker(max == trueMax),
			sketch, marker(sketch == clean))
	}

	fmt.Println("\nCOUNT and SUM compound duplication at every hop ((1+p)^depth); MAX and the")
	fmt.Println("sketch are bit-identical under any duplication because their merges are idempotent.")

	// The logical conclusion of ODI: drop the tree entirely and gossip the
	// sketch — any number of redundant paths, same answer.
	nw := netsim.New(g, values, maxX, netsim.WithSeed(11))
	truth := core.TrueDistinct(values)
	res := gossip.Distinct(nw, 8, loglog.EstHLL, 11, gossip.Params{Rounds: 200})
	fmt.Printf("\ntreeless gossiped sketch: %d distinct values estimated as %.1f (±%.0f%%),\n",
		truth, res.Estimate, 100*loglog.SigmaOf(loglog.EstHLL, 256))
	fmt.Println("with every message travelling an arbitrary, redundant gossip path.")
}

// adversaryAct runs the lying-subtree median: the same deployment answers
// SELECT median twice under a Byzantine fault plan — plain, then on the
// robust tier — and prints the integrity accounting. Deterministic: the
// example's output is asserted by a test.
func adversaryAct() {
	const byzRate = 0.08
	eng := engine.New(engine.Options{Workers: 1})
	spec := engine.Spec{
		Topology: "grid", N: 256, Workload: string(workload.Gaussian),
		Seed: 11, Faults: faults.Spec{Byz: byzRate},
	}
	fmt.Printf("\n--- act two: a lying subtree (byz=%.2f, %d sensors) ---\n", byzRate, spec.N)

	res := eng.Submit(context.Background(), []engine.Job{
		{ID: "plain", Spec: spec, Query: engine.Query{Kind: engine.KindMedian}},
		{ID: "robust", Spec: spec, Query: engine.Query{Kind: engine.KindMedian, Robust: true}},
	})
	plain, robust := res[0], res[1]
	if plain.Failed() || robust.Failed() {
		log.Fatalf("adversary act failed: plain %q robust %q", plain.Error, robust.Error)
	}
	mark := "✗ (the lie landed)"
	if plain.Exact {
		mark = "✓ (the lie missed this run)"
	}
	fmt.Printf("plain median:  %s, truth %s %s\n",
		engine.FormatValue(plain.Value), engine.FormatValue(plain.Truth), mark)
	fmt.Printf("robust median: %s, truth %s — %d liars quarantined in %d audit rounds (%d audit bits)\n",
		engine.FormatValue(robust.Value), engine.FormatValue(robust.Truth),
		robust.Quarantined, robust.AuditRounds, robust.AuditBits)
	fmt.Printf("integrity bound: ±%d items", robust.IntegrityBound)
	if robust.IntegrityBound == 0 {
		fmt.Println(" — the answer is certified exact over the honest survivors")
	} else {
		fmt.Println(" — a still-suspect sector could displace at most this many items")
	}
	if !robust.Exact {
		log.Fatalf("robust median %g != surviving truth %g", robust.Value, robust.Truth)
	}
	fmt.Println("\nidempotent merges survive duplication, but only the audit tier survives a liar:")
	fmt.Println("the challenge sums convict the corrupted subtree, the healing wave routes around")
	fmt.Println("it, and the bound turns \"trust me\" into a per-answer guarantee.")
}
