package main

import (
	"io"
	"os"
	"strings"
	"testing"
)

// TestAdversaryActOutput runs the example's lying-subtree scenario and
// asserts the printed contract: the plain median is corrupted, the
// robust median quarantines the liars, and the integrity bound line
// certifies exactness. The scenario is fully deterministic (fixed
// topology, workload, and fault seed), so the assertion is on the
// actual rendered lines, not just "it ran".
func TestAdversaryActOutput(t *testing.T) {
	old := os.Stdout
	r, w, err := os.Pipe()
	if err != nil {
		t.Fatal(err)
	}
	os.Stdout = w
	adversaryAct() // log.Fatalf inside aborts the test process on a broken run
	w.Close()
	os.Stdout = old
	raw, err := io.ReadAll(r)
	if err != nil {
		t.Fatal(err)
	}
	out := string(raw)

	for _, want := range []string{
		"a lying subtree (byz=0.08, 256 sensors)",
		"✗ (the lie landed)",
		"liars quarantined",
		"integrity bound: ±0 items — the answer is certified exact over the honest survivors",
	} {
		if !strings.Contains(out, want) {
			t.Errorf("example output missing %q\n--- output ---\n%s", want, out)
		}
	}
	if strings.Contains(out, "0 liars quarantined") {
		t.Errorf("adversary too quiet — no one was quarantined:\n%s", out)
	}
}
