// Continuous monitoring: the TAG operating mode the paper's protocols live
// inside. A standing median query re-runs every epoch over a drifting
// temperature field (a warm front passing through the deployment), while
// the base station tracks the hottest node's battery. The run shows the
// paper's point operationally: the per-epoch cost of the exact median is
// small and flat, so the standing query survives thousands of epochs.
package main

import (
	"fmt"
	"log"
	"math"

	"sensoragg/internal/agg"
	"sensoragg/internal/energy"
	"sensoragg/internal/epoch"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/workload"
)

func main() {
	const maxX = 1023 // tenths of °C above -20
	g := topology.RandomGeometric(1500, 0, 21)
	values := workload.Generate(workload.Drift, g.N(), maxX, 21)
	nw := netsim.New(g, values, maxX, netsim.WithSeed(21))

	// A warm front: a sinusoidal bump sweeping across node indices over the
	// day, on top of each node's base reading (non-cumulative).
	base := append([]uint64(nil), values...)
	front := func(e int, node topology.NodeID, prev uint64) uint64 {
		phase := 2 * math.Pi * (float64(e)/48 - float64(node)/float64(g.N()))
		bump := 120 * math.Max(0, math.Sin(phase))
		return base[node] + uint64(bump)
	}

	model := energy.MoteDefaults()
	runner := &epoch.Runner{
		Net:       agg.NewNet(spantree.NewFast(nw)),
		Statement: "SELECT median(value)",
		Update:    front,
		Model:     model,
	}

	const epochs = 48 // one day at 30-minute epochs
	records, err := runner.Run(epochs)
	if err != nil {
		log.Fatal(err)
	}

	toC := func(v float64) float64 { return v/10 - 20 }
	fmt.Printf("standing query %q over %d sensors, %d epochs (30 min each)\n\n",
		runner.Statement, g.N(), len(records))
	fmt.Printf("%-8s %12s %14s %16s\n", "epoch", "median °C", "b/node", "hottest J used")
	for _, rec := range records {
		if rec.Epoch%8 != 0 {
			continue
		}
		fmt.Printf("%-8d %12.1f %14d %16s\n",
			rec.Epoch, toC(rec.Value), rec.MaxPerNode, energy.FormatJoules(rec.HottestEnergy))
	}

	last := records[len(records)-1]
	perEpoch := last.HottestEnergy / float64(len(records))
	lifetimeEpochs := model.Battery / perEpoch
	fmt.Printf("\nhottest node spends %s per epoch → the standing query survives ≈ %.0f epochs",
		energy.FormatJoules(perEpoch), lifetimeEpochs)
	fmt.Printf(" (≈ %.1f years at this rate).\n", energy.Years(lifetimeEpochs, 1800))
	fmt.Println("The median tracks the warm front with a flat per-epoch cost — the (log N)² bound")
	fmt.Println("does not depend on what the sensors read (Theorem 3.2 is worst-case).")
}
