// Distinct counting: Section 5's dichotomy in a concrete setting. Acoustic
// sensors each report the species ID they last detected; the biologist
// wants to know how many distinct species are active. Exactness is
// provably expensive (Theorem 5.1: Ω(n) bits — the reduction from Set
// Disjointness), while a log-log sketch answers within a few percent for a
// few hundred bits per node.
package main

import (
	"fmt"
	"log"

	"sensoragg/internal/core"
	"sensoragg/internal/distinct"
	"sensoragg/internal/loglog"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/workload"
)

func main() {
	// 2000 acoustic sensors; ~600 species IDs in a 16-bit ID space, heavily
	// repeated (popular species are heard everywhere).
	const maxX = 1 << 16
	g := topology.RandomGeometric(2000, 0, 5)
	values := workload.Generate(workload.Zipf, g.N(), maxX, 5)
	truth := core.TrueDistinct(values)

	fmt.Printf("deployment: %d sensors, %d distinct species actually present\n\n", g.N(), truth)

	// Exact: union of species sets up the tree.
	nwExact := netsim.New(g, values, maxX, netsim.WithSeed(5))
	exact, err := distinct.Exact(spantree.NewFast(nwExact))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("exact protocol:      %4d species — %6d bits/node (max), %d total bits\n",
		exact.Distinct, exact.Comm.MaxPerNode, exact.Comm.TotalBits)

	// Approximate: one sketch convergecast per query, sweep the size knob.
	for _, p := range []int{4, 6, 8} {
		nw := netsim.New(g, values, maxX, netsim.WithSeed(5))
		apx, err := distinct.Approximate(spantree.NewFast(nw), p, loglog.EstHLL, 5)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("sketch m=%-4d        %4.0f species — %6d bits/node (max), expected error ±%.0f%%\n",
			1<<p, apx.Estimate, apx.Comm.MaxPerNode, 100*apx.Sigma)
	}

	fmt.Println("\nTheorem 5.1 says the exact number cannot come cheaper: deciding whether two")
	fmt.Println("halves of the network share even one species is Set Disjointness, which needs")
	fmt.Println("Ω(n) bits across the cut (run cmd/experiments -only E8 for the measurement).")
}
