// Environmental monitoring: the scenario that motivated TAG-era systems —
// a field of temperature sensors queried periodically by a base station.
// The median is the robust "typical temperature" statistic (unlike AVG it
// shrugs off a few broken sensors reporting extremes), and communication is
// the battery budget: radio bits are the dominant energy cost, so we
// translate per-node bits into an energy estimate and compare the exact
// median (Fig. 1), the approximate median (Fig. 2), and collect-all.
package main

import (
	"fmt"
	"log"

	"sensoragg/internal/agg"
	"sensoragg/internal/baseline"
	"sensoragg/internal/core"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/wire"
	"sensoragg/internal/workload"
)

// nJPerBit approximates radio energy per transmitted/received bit for a
// mote-class transceiver (~230 nJ/bit at 250 kbps, 50 mW-class radios).
const nJPerBit = 230.0

func main() {
	// 2500 sensors scattered over a field (random geometric radio graph).
	// Readings are tenths of °C offset from -20°C: domain [0, 1023] covers
	// -20.0°C to +82.3°C. The drift workload gives a warm-to-cold gradient
	// across the field plus sensor noise.
	const maxX = 1023
	g := topology.RandomGeometric(2500, 0, 7)
	values := workload.Generate(workload.Drift, g.N(), maxX, 7)

	// A handful of faulty sensors report absurd extremes — the reason the
	// operator asks for the median, not the average.
	for i := 0; i < 25; i++ {
		values[i*97%len(values)] = maxX
	}

	nw := netsim.New(g, values, maxX, netsim.WithSeed(7))
	net := agg.NewNet(spantree.NewFast(nw))
	toC := func(v float64) float64 { return v/10 - 20 }

	fmt.Printf("field: %d sensors, radio graph %s, tree height %d\n\n", g.N(), g.Name, nw.Tree.Height())

	avg, _ := net.Average(core.Linear, wire.True())
	fmt.Printf("average temperature: %+.1f°C (pulled up by faulty sensors)\n", toC(avg))

	before := nw.Meter.Snapshot()
	med, err := core.Median(net)
	if err != nil {
		log.Fatal(err)
	}
	dMed := nw.Meter.Since(before)
	fmt.Printf("exact median:        %+.1f°C — %d bits/node ≈ %.1f µJ per query on the busiest sensor\n",
		toC(float64(med.Value)), dMed.MaxPerNode, float64(dMed.MaxPerNode)*nJPerBit/1000)

	before = nw.Meter.Snapshot()
	apx, err := core.ApxMedian(net, core.ApxParams{Epsilon: 0.25})
	if err != nil {
		log.Fatal(err)
	}
	dApx := nw.Meter.Since(before)
	fmt.Printf("apx median (Fig.2):  %+.1f°C — %d bits/node ≈ %.1f µJ (σ band, constants dominate at this N)\n",
		toC(float64(apx.Value)), dApx.MaxPerNode, float64(dApx.MaxPerNode)*nJPerBit/1000)

	nw2 := netsim.New(g, values, maxX, netsim.WithSeed(7))
	all, err := baseline.CollectAllMedian(spantree.NewFast(nw2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collect-all:         %+.1f°C — %d bits/node ≈ %.1f µJ (the node next to the base station dies first)\n",
		toC(float64(all.Value)), all.Comm.MaxPerNode, float64(all.Comm.MaxPerNode)*nJPerBit/1000)

	fmt.Printf("\nAt %d nodes the exact binary search is the sweet spot: a robust, exact\n", g.N())
	fmt.Printf("statistic at %.1fx less hot-spot energy than raw collection — and the gap\n",
		float64(all.Comm.MaxPerNode)/float64(dMed.MaxPerNode))
	fmt.Println("widens linearly with deployment size (see experiment E9).")
}
