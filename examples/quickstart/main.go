// Quickstart: build a simulated sensor network, run the easy TAG
// aggregates (Fact 2.1), then the paper's headline protocol — the exact
// median at O((log N)²) bits per node (Theorem 3.2) — and compare its cost
// with shipping all raw data to the root.
package main

import (
	"fmt"
	"log"

	"sensoragg/internal/agg"
	"sensoragg/internal/baseline"
	"sensoragg/internal/core"
	"sensoragg/internal/netsim"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/wire"
	"sensoragg/internal/workload"
)

func main() {
	// A 32x32 sensor grid; each node holds one reading in [0, 4095].
	const maxX = 4095
	g := topology.Grid(32, 32)
	values := workload.Generate(workload.Uniform, g.N(), maxX, 42)
	nw := netsim.New(g, values, maxX, netsim.WithSeed(42))

	// The paper's primitives run on a bounded-degree BFS spanning tree.
	net := agg.NewNet(spantree.NewFast(nw))
	fmt.Printf("deployment: %s (%d nodes, spanning tree height %d)\n\n",
		g.Name, g.N(), nw.Tree.Height())

	// Fact 2.1: MIN/MAX/COUNT/AVG cost O(log N) bits per node.
	lo, hi, _ := net.MinMax(core.Linear)
	count := net.Count(core.Linear, wire.True())
	avg, _ := net.Average(core.Linear, wire.True())
	fmt.Printf("min=%d max=%d count=%d avg=%.1f\n", lo, hi, count, avg)
	fmt.Printf("  cost so far: %d bits/node (easy aggregates are cheap)\n\n", nw.Meter.MaxPerNode())

	// Theorem 3.2: the exact median by binary search over COUNTP.
	before := nw.Meter.Snapshot()
	med, err := core.Median(net)
	if err != nil {
		log.Fatal(err)
	}
	d := nw.Meter.Since(before)
	fmt.Printf("median=%d in %d iterations, %d bits/node\n", med.Value, med.Iterations, d.MaxPerNode)

	// The TAG-era alternative: ship every reading to the root.
	nw2 := netsim.New(g, values, maxX, netsim.WithSeed(42))
	all, err := baseline.CollectAllMedian(spantree.NewFast(nw2))
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("collect-all median=%d, %d bits/node — %.0fx more than the paper's protocol\n",
		all.Value, all.Comm.MaxPerNode, float64(all.Comm.MaxPerNode)/float64(d.MaxPerNode))
}
