// Percentile dashboard: the Section 3.4 generalization in action. A
// network measuring per-node request latencies answers p10/p50/p90/p99
// queries with the exact k-order-statistic search, and the same questions
// with the cheaper one-pass summaries (GK [4]) and sampling ([10]) for
// contrast — the accuracy/cost tradeoff the paper's related-work section is
// about, on heavy-tailed (Zipf) data where percentiles actually matter.
package main

import (
	"fmt"
	"log"

	"sensoragg/internal/agg"
	"sensoragg/internal/core"
	"sensoragg/internal/gk"
	"sensoragg/internal/netsim"
	"sensoragg/internal/sampling"
	"sensoragg/internal/spantree"
	"sensoragg/internal/topology"
	"sensoragg/internal/workload"
)

func main() {
	// 4096 nodes reporting latencies in microseconds, heavy-tailed.
	const maxX = 1 << 16
	g := topology.Grid(64, 64)
	values := workload.Generate(workload.Zipf, g.N(), maxX, 99)
	nw := netsim.New(g, values, maxX, netsim.WithSeed(99))
	net := agg.NewNet(spantree.NewFast(nw))
	ops := net.Ops()
	sorted := core.SortedCopy(values)
	n := len(values)

	fmt.Printf("latency percentiles over %d nodes (Zipf tail, max observed %dµs)\n\n", n, sorted[n-1])
	fmt.Printf("%-6s %10s %14s %14s %12s\n", "pct", "true", "exact (Fig.1)", "gk-summary", "sampling")

	for _, pct := range []float64{0.10, 0.50, 0.90, 0.99} {
		k := uint64(pct * float64(n))
		if k < 1 {
			k = 1
		}
		exact, err := core.OrderStatistic(net, k)
		if err != nil {
			log.Fatal(err)
		}
		gkRes, err := gk.QuantileProtocol(ops, 32, k)
		if err != nil {
			log.Fatal(err)
		}
		smp, err := sampling.Quantile(ops, 256, 99, pct)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("p%-5.0f %9dµs %13dµs %13dµs %11dµs\n",
			pct*100, core.TrueOrderStatistic(sorted, int(k)), exact.Value, gkRes.Value, smp.Value)
	}

	fmt.Printf("\ncommunication for the whole dashboard: %d bits/node (max)\n", nw.Meter.MaxPerNode())
	fmt.Println("exact percentiles are right even at p99, where summaries and samples blur the tail;")
	fmt.Println("each exact query is a fresh multi-pass binary search, so cost scales with query count —")
	fmt.Println("the one-pass GK summary answers all ranks at once (the tradeoff of §1 vs [4]).")
}
